//! Asynchronous shared-memory execution model for renaming algorithms.
//!
//! This crate reproduces the model of §2 of *"Randomized loose renaming in
//! O(log log n) time"* (PODC 2013): `n` processes take *steps*, each step
//! consisting of local computation (including coin flips) followed by one
//! shared-memory operation — here always a test-and-set (TAS) on an indexed
//! location. The order of steps, and crashes, are controlled by an
//! **adversary**:
//!
//! * the *adaptive (strong)* adversary sees the full state of every process,
//!   including the outcome of coin flips, before each scheduling decision;
//! * the *oblivious* adversary fixes the schedule independently of the coin
//!   flips (e.g. the layered random-permutation schedule of the paper's §6
//!   lower bound).
//!
//! Algorithms are expressed as deterministic-given-coins step machines
//! ([`Renamer`]): the simulator asks a machine to [`Renamer::propose`] its
//! next shared-memory operation (this is where coins are flipped — and the
//! strong adversary gets to see the chosen location), schedules it at a
//! moment of the adversary's choosing, and reports the outcome via
//! [`Renamer::observe`].
//!
//! The same machines are run, unchanged, against real hardware atomics by
//! `renaming-core`'s concurrent driver — the simulator is how we measure
//! *step complexity* exactly, the threads are how we measure wall-clock
//! time.
//!
//! # The two-tier engine
//!
//! One generic engine powers two public entry points:
//!
//! * **Boxed tier** — [`Execution::run`] takes `Vec<Box<dyn Renamer>>`
//!   and a `Box<dyn Adversary>`. Use it when machines of different types
//!   share one execution, or when flexibility matters more than speed.
//! * **Monomorphic tier** — [`Execution::run_typed`] (and the
//!   scratch-reusing [`Execution::run_typed_in`]) takes concrete machine,
//!   adversary and RNG types. The whole per-probe loop monomorphizes:
//!   no machine boxes, no adversary vtables, coin flips inlined through
//!   [`Renamer::propose_typed`] / [`Renamer::step_typed`], and (with
//!   [`EngineScratch`]) no per-execution allocation in steady state.
//!   Pair it with a cheap seedable generator such as `renaming-core`'s
//!   xoshiro-based `FastRng` for large experiment sweeps — the
//!   `throughput` experiment in `renaming-bench` measures this tier at
//!   5–6× the steps/sec of the original (seed) engine.
//!
//! The tiers are the *same* engine function instantiated twice, so they
//! cannot drift: with equal seeds, machines, adversary and RNG type they
//! produce byte-identical [`ExecutionReport`]s, traces included. The
//! workspace's `engine_equivalence` integration suite asserts exactly
//! that across all three paper machines.
//!
//! # Example
//!
//! ```
//! use renaming_sim::adversary::RoundRobin;
//! use renaming_sim::{Action, Execution, Name, Renamer};
//! use rand::RngCore;
//!
//! /// A toy renamer: scan locations left to right.
//! struct Scan { next: usize, won: Option<Name> }
//!
//! impl Renamer for Scan {
//!     fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
//!         match self.won {
//!             Some(name) => Action::Done(name),
//!             None => Action::Probe(self.next),
//!         }
//!     }
//!     fn observe(&mut self, won: bool) {
//!         if won { self.won = Some(Name::new(self.next)) } else { self.next += 1 }
//!     }
//!     fn name(&self) -> Option<Name> {
//!         self.won
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machines: Vec<Box<dyn Renamer>> = (0..4)
//!     .map(|_| Box::new(Scan { next: 0, won: None }) as Box<dyn Renamer>)
//!     .collect();
//! let report = Execution::new(8)
//!     .adversary(Box::new(RoundRobin::new()))
//!     .seed(7)
//!     .run(machines)?;
//! assert_eq!(report.assigned_names().len(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adversary;
mod crash;
mod error;
mod machine;
mod memory;
mod report;
mod runner;
mod trace;

pub use crash::CrashPlan;
pub use error::SimError;
pub use machine::{Action, MachineStats, Name, Renamer};
pub use memory::TasMemory;
pub use report::{ExecutionReport, ProcessOutcome};
pub use runner::{EngineScratch, Execution};
pub use trace::{ExecutionTrace, TraceEvent};

/// Identifier of a simulated process (its index in the machine vector).
pub type ProcessId = usize;
