//! The step-machine interface every renaming algorithm implements.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A name: the index of the shared TAS location the process won.
///
/// The paper's convention (§1): "a process obtains a name by performing a
/// successful TAS on a location, returning the index of that location as
/// its name". Names are zero-based here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Name(usize);

impl Name {
    /// Wraps a raw location index as a name.
    pub fn new(value: usize) -> Self {
        Name(value)
    }

    /// The raw value (location index) of the name.
    pub fn value(self) -> usize {
        self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Name> for usize {
    fn from(name: Name) -> usize {
        name.0
    }
}

/// The next move a step machine wants to make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Perform a test-and-set on the global location with this index.
    ///
    /// One `Probe` is one *step* in the paper's complexity measures.
    Probe(usize),
    /// The machine has terminated with this name. Termination is a local
    /// action and costs no shared-memory step.
    Done(Name),
    /// The machine gives up: its namespace is exhausted. This can only
    /// happen when an algorithm is run with more processes than the
    /// capacity it was constructed for; the runner records the process as
    /// stuck rather than deadlocking.
    Stuck,
}

/// Per-machine diagnostic counters, reported after an execution.
///
/// Algorithms fill in what applies to them; the defaults are neutral.
/// These feed experiments E3 (per-batch survivor counts), E4 (backup-phase
/// rate) and E5/E6 (objects visited by the adaptive algorithms).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Shared-memory probes performed.
    pub probes: u64,
    /// Number of batch-probe calls (`TryGetName` in the paper's
    /// pseudocode) that completed without acquiring a name.
    pub failed_calls: u64,
    /// Deepest batch index probed inside a single ReBatching object.
    /// For the ReBatching algorithm, a value of `i` means the process
    /// survived into batch `B_i` (Lemma 4.2's `n_i` counts processes with
    /// `deepest_batch >= i`).
    pub deepest_batch: Option<usize>,
    /// Number of distinct ReBatching objects visited (adaptive algorithms).
    pub objects_visited: u64,
    /// Whether the sequential backup phase was entered (§4, lines 5–7).
    pub entered_backup: bool,
    /// Total names the process *acquired* (the adaptive algorithms may win
    /// several TAS objects and return only the last).
    pub names_acquired: u64,
}

/// A renaming algorithm expressed as a step machine.
///
/// The contract mirrors the paper's model:
///
/// 1. The runner calls [`propose`](Self::propose). The machine flips any
///    coins it needs (via `rng`) and announces its next shared-memory
///    operation. A strong adversary may inspect the announced location
///    before scheduling the step.
/// 2. When the adversary schedules the process, the runner executes the TAS
///    and reports the outcome through [`observe`](Self::observe).
/// 3. When `propose` returns [`Action::Done`], the process has terminated;
///    the runner never calls the machine again.
///
/// Machines must be deterministic given the coin-flip sequence: all
/// nondeterminism flows through `rng`. This is what lets the concurrent
/// driver in `renaming-core` replay the same machine against hardware
/// atomics.
pub trait Renamer {
    /// Announce the next action. Must not be called again before
    /// [`observe`](Self::observe) if it returned [`Action::Probe`], and
    /// must never be called after it returned [`Action::Done`].
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action;

    /// Monomorphic variant of [`propose`](Self::propose): the runner's
    /// typed tier calls this with a concrete generator so the whole
    /// coin-flip path can inline. The default forwards through the
    /// dynamic entry point (semantically identical — implement it only as
    /// an optimization, and keep both paths flipping the same coins).
    /// Excluded from `dyn Renamer` (`Self: Sized`).
    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action
    where
        Self: Sized,
    {
        self.propose(rng)
    }

    /// Fused [`observe`](Self::observe) + [`propose_typed`](Self::propose_typed):
    /// one dispatch per executed probe on the typed tier. The default is
    /// exactly the two calls in sequence; enum-dispatched machines
    /// override it to branch on their variant once instead of twice.
    /// Excluded from `dyn Renamer` (`Self: Sized`).
    #[inline]
    fn step_typed<R: RngCore>(&mut self, won: bool, rng: &mut R) -> Action
    where
        Self: Sized,
    {
        self.observe(won);
        self.propose_typed(rng)
    }

    /// Report the outcome of the most recently proposed probe
    /// (`won == true` iff the TAS was won).
    fn observe(&mut self, won: bool);

    /// The name the machine has decided on, if it has terminated.
    fn name(&self) -> Option<Name>;

    /// Diagnostic counters; see [`MachineStats`].
    fn stats(&self) -> MachineStats {
        MachineStats::default()
    }

    /// Short label for reports ("rebatching", "uniform", ...).
    fn algorithm(&self) -> &'static str {
        "unnamed"
    }
}

impl fmt::Debug for dyn Renamer + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Renamer")
            .field("algorithm", &self.algorithm())
            .field("name", &self.name())
            .finish()
    }
}

/// Boxes forward to the boxed machine, so `Vec<Box<dyn Renamer>>` runs on
/// the same generic engine as concrete machine vectors (the boxed tier of
/// the runner is just `M = Box<dyn Renamer>`).
impl<T: Renamer + ?Sized> Renamer for Box<T> {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        (**self).propose(rng)
    }

    fn observe(&mut self, won: bool) {
        (**self).observe(won)
    }

    fn name(&self) -> Option<Name> {
        (**self).name()
    }

    fn stats(&self) -> MachineStats {
        (**self).stats()
    }

    fn algorithm(&self) -> &'static str {
        (**self).algorithm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_accessors() {
        let n = Name::new(17);
        assert_eq!(n.value(), 17);
        assert_eq!(usize::from(n), 17);
        assert_eq!(n.to_string(), "17");
        assert!(Name::new(3) < Name::new(4));
    }

    #[test]
    fn action_equality() {
        assert_eq!(Action::Probe(3), Action::Probe(3));
        assert_ne!(Action::Probe(3), Action::Probe(4));
        assert_ne!(Action::Probe(3), Action::Done(Name::new(3)));
    }

    #[test]
    fn default_stats_are_neutral() {
        let s = MachineStats::default();
        assert_eq!(s.probes, 0);
        assert_eq!(s.deepest_batch, None);
        assert!(!s.entered_backup);
    }

    #[test]
    fn stats_serde_roundtrip() {
        let s = MachineStats {
            probes: 5,
            failed_calls: 1,
            deepest_batch: Some(2),
            objects_visited: 3,
            entered_backup: false,
            names_acquired: 1,
        };
        let json = serde_json::to_string(&s).expect("serialize");
        let back: MachineStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
