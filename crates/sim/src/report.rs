//! Execution results and derived metrics.

use serde::{Deserialize, Serialize};

use crate::{MachineStats, Name};

/// The fate of a single process in an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessOutcome {
    /// Terminated with a unique name after `steps` shared-memory steps.
    Named {
        /// The acquired name.
        name: Name,
        /// Shared-memory steps the process performed.
        steps: u64,
    },
    /// Crashed (fail-stop) after `steps` shared-memory steps.
    Crashed {
        /// Steps performed before crashing.
        steps: u64,
    },
    /// Gave up with an exhausted namespace (only possible when running more
    /// processes than the algorithm's configured capacity).
    Stuck {
        /// Steps performed before giving up.
        steps: u64,
    },
}

impl ProcessOutcome {
    /// The name, if the process terminated.
    pub fn name(&self) -> Option<Name> {
        match self {
            ProcessOutcome::Named { name, .. } => Some(*name),
            ProcessOutcome::Crashed { .. } | ProcessOutcome::Stuck { .. } => None,
        }
    }

    /// Steps the process performed (terminated or not).
    pub fn steps(&self) -> u64 {
        match self {
            ProcessOutcome::Named { steps, .. }
            | ProcessOutcome::Crashed { steps }
            | ProcessOutcome::Stuck { steps } => *steps,
        }
    }
}

/// Everything measured about one simulated execution.
///
/// The paper's two complexity measures map to [`max_steps`] (individual
/// step complexity: "the maximum number of steps that any process performs
/// in an execution") and [`total_steps`] (total step complexity / work).
///
/// [`max_steps`]: Self::max_steps
/// [`total_steps`]: Self::total_steps
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Per-process outcome, indexed by process id.
    pub outcomes: Vec<ProcessOutcome>,
    /// Per-process algorithm diagnostics, indexed by process id.
    pub stats: Vec<MachineStats>,
    /// Label of the algorithm run (from the first machine).
    pub algorithm: String,
    /// Label of the adversary that scheduled the execution.
    pub adversary: String,
    /// Total shared-memory steps executed.
    pub total_steps: u64,
    /// Layers completed, when the adversary counts them.
    pub layers: Option<u64>,
    /// Size of the shared memory.
    pub memory_len: usize,
    /// Locations won at the end of the execution.
    pub set_count: usize,
    /// Peak per-location probe count (contention hotspot).
    pub max_location_accesses: u32,
    /// Full probe-level trace, when tracing was enabled on the execution.
    pub trace: Option<crate::ExecutionTrace>,
}

impl ExecutionReport {
    /// Names assigned to the processes that terminated.
    pub fn assigned_names(&self) -> Vec<Name> {
        self.outcomes.iter().filter_map(|o| o.name()).collect()
    }

    /// Number of processes that terminated with a name.
    pub fn named_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.name().is_some()).count()
    }

    /// Number of crashed processes.
    pub fn crashed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, ProcessOutcome::Crashed { .. }))
            .count()
    }

    /// Number of processes that gave up with an exhausted namespace.
    pub fn stuck_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, ProcessOutcome::Stuck { .. }))
            .count()
    }

    /// The largest assigned name (namespace usage).
    pub fn max_name(&self) -> Option<Name> {
        self.assigned_names().into_iter().max()
    }

    /// Individual step complexity: max steps over processes that
    /// *terminated* (crashed processes stopped early by fiat).
    pub fn max_steps(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.name().is_some())
            .map(|o| o.steps())
            .max()
            .unwrap_or(0)
    }

    /// Mean steps over terminated processes.
    pub fn mean_steps(&self) -> f64 {
        let named: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| o.name().is_some())
            .map(|o| o.steps())
            .collect();
        if named.is_empty() {
            0.0
        } else {
            named.iter().sum::<u64>() as f64 / named.len() as f64
        }
    }

    /// The `q`-quantile (in `[0, 1]`) of steps over terminated processes,
    /// linearly interpolated between adjacent order statistics via
    /// [`renaming_analysis::lerp_quantile`] (nearest-rank rounding biased
    /// medians and tail percentiles upward).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn steps_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut named: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.name().is_some())
            .map(|o| o.steps() as f64)
            .collect();
        if named.is_empty() {
            return 0.0;
        }
        named.sort_unstable_by(f64::total_cmp);
        renaming_analysis::lerp_quantile(&named, q)
    }

    /// Lemma 4.2's `n_i`: the number of processes that exhausted every
    /// probe of batches `0..i` without winning (i.e. reached batch `i`).
    /// `survivors_at_batch(0)` counts every process that probed at all.
    pub fn survivors_at_batch(&self, i: usize) -> usize {
        self.stats
            .iter()
            .filter(|s| s.deepest_batch.is_some_and(|d| d >= i))
            .count()
    }

    /// Processes that entered the sequential backup phase.
    pub fn backup_entries(&self) -> usize {
        self.stats.iter().filter(|s| s.entered_backup).count()
    }

    /// Verifies every name fits in `0..bound`; returns the first violator.
    pub fn names_within(&self, bound: usize) -> Result<(), Name> {
        match self.assigned_names().into_iter().find(|n| n.value() >= bound) {
            Some(n) => Err(n),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            outcomes: vec![
                ProcessOutcome::Named {
                    name: Name::new(3),
                    steps: 4,
                },
                ProcessOutcome::Crashed { steps: 2 },
                ProcessOutcome::Named {
                    name: Name::new(0),
                    steps: 10,
                },
            ],
            stats: vec![
                MachineStats {
                    deepest_batch: Some(1),
                    ..MachineStats::default()
                },
                MachineStats::default(),
                MachineStats {
                    deepest_batch: Some(3),
                    entered_backup: true,
                    ..MachineStats::default()
                },
            ],
            algorithm: "test".into(),
            adversary: "round-robin".into(),
            total_steps: 16,
            layers: Some(2),
            memory_len: 8,
            set_count: 2,
            max_location_accesses: 5,
            trace: None,
        }
    }

    #[test]
    fn outcome_accessors() {
        let named = ProcessOutcome::Named {
            name: Name::new(1),
            steps: 7,
        };
        assert_eq!(named.name(), Some(Name::new(1)));
        assert_eq!(named.steps(), 7);
        let crashed = ProcessOutcome::Crashed { steps: 3 };
        assert_eq!(crashed.name(), None);
        assert_eq!(crashed.steps(), 3);
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.named_count(), 2);
        assert_eq!(r.crashed_count(), 1);
        assert_eq!(r.max_name(), Some(Name::new(3)));
        assert_eq!(r.max_steps(), 10);
        assert!((r.mean_steps() - 7.0).abs() < 1e-12);
        assert_eq!(r.steps_quantile(0.0), 4.0);
        assert_eq!(r.steps_quantile(1.0), 10.0);
        // Two named processes (4 and 10 steps): the median interpolates.
        assert!((r.steps_quantile(0.5) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn batch_survivors_and_backup() {
        let r = report();
        assert_eq!(r.survivors_at_batch(0), 2);
        assert_eq!(r.survivors_at_batch(1), 2);
        assert_eq!(r.survivors_at_batch(2), 1);
        assert_eq!(r.survivors_at_batch(4), 0);
        assert_eq!(r.backup_entries(), 1);
    }

    #[test]
    fn names_within_bound() {
        let r = report();
        assert!(r.names_within(4).is_ok());
        assert_eq!(r.names_within(3), Err(Name::new(3)));
    }

    #[test]
    fn empty_report_quantiles() {
        let r = ExecutionReport {
            outcomes: vec![ProcessOutcome::Crashed { steps: 1 }],
            stats: vec![MachineStats::default()],
            algorithm: "x".into(),
            adversary: "y".into(),
            total_steps: 1,
            layers: None,
            memory_len: 1,
            set_count: 0,
            max_location_accesses: 1,
            trace: None,
        };
        assert_eq!(r.max_steps(), 0);
        assert_eq!(r.mean_steps(), 0.0);
        assert_eq!(r.steps_quantile(0.5), 0.0);
        assert_eq!(r.max_name(), None);
    }
}
