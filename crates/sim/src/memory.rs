//! Simulated shared memory: an indexed array of one-shot TAS locations.

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// The shared array of test-and-set locations used by a simulated
/// execution.
///
/// Besides the boolean flags themselves, the memory records which process
/// won each location and how often each location was probed — the
/// contention statistics several experiments report.
///
/// # Example
///
/// ```
/// use renaming_sim::TasMemory;
///
/// let mut mem = TasMemory::new(4);
/// assert!(mem.test_and_set(2, 0));   // process 0 wins location 2
/// assert!(!mem.test_and_set(2, 1));  // process 1 loses it
/// assert_eq!(mem.winner(2), Some(0));
/// assert_eq!(mem.accesses(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TasMemory {
    set: Vec<bool>,
    winners: Vec<Option<ProcessId>>,
    accesses: Vec<u32>,
}

impl TasMemory {
    /// Creates `size` unset locations.
    pub fn new(size: usize) -> Self {
        Self {
            set: vec![false; size],
            winners: vec![None; size],
            accesses: vec![0; size],
        }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` if the memory has no locations.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Performs a TAS on `location` on behalf of `pid`; returns `true` if
    /// the process won.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    pub fn test_and_set(&mut self, location: usize, pid: ProcessId) -> bool {
        self.accesses[location] = self.accesses[location].saturating_add(1);
        if self.set[location] {
            false
        } else {
            self.set[location] = true;
            self.winners[location] = Some(pid);
            true
        }
    }

    /// Reads `location` without modifying it.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    pub fn is_set(&self, location: usize) -> bool {
        self.set[location]
    }

    /// The process that won `location`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    pub fn winner(&self, location: usize) -> Option<ProcessId> {
        self.winners[location]
    }

    /// How many TAS operations hit `location`.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    pub fn accesses(&self, location: usize) -> u32 {
        self.accesses[location]
    }

    /// Number of won locations.
    pub fn set_count(&self) -> usize {
        self.set.iter().filter(|s| **s).count()
    }

    /// The largest access count over all locations (peak contention).
    pub fn max_accesses(&self) -> u32 {
        self.accesses.iter().copied().max().unwrap_or(0)
    }

    /// Total TAS operations across all locations.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().map(|&a| u64::from(a)).sum()
    }

    /// Resets all locations and statistics (for trial reuse).
    pub fn reset(&mut self) {
        self.set.iter_mut().for_each(|s| *s = false);
        self.winners.iter_mut().for_each(|w| *w = None);
        self.accesses.iter_mut().for_each(|a| *a = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_unset() {
        let mem = TasMemory::new(3);
        assert_eq!(mem.len(), 3);
        assert!(!mem.is_empty());
        assert_eq!(mem.set_count(), 0);
        assert_eq!(mem.total_accesses(), 0);
        assert_eq!(mem.winner(0), None);
    }

    #[test]
    fn empty_memory() {
        let mem = TasMemory::new(0);
        assert!(mem.is_empty());
        assert_eq!(mem.max_accesses(), 0);
    }

    #[test]
    fn first_tas_wins_then_loses() {
        let mut mem = TasMemory::new(2);
        assert!(mem.test_and_set(1, 5));
        assert!(!mem.test_and_set(1, 6));
        assert!(!mem.test_and_set(1, 5));
        assert!(mem.is_set(1));
        assert!(!mem.is_set(0));
        assert_eq!(mem.winner(1), Some(5));
        assert_eq!(mem.accesses(1), 3);
        assert_eq!(mem.accesses(0), 0);
        assert_eq!(mem.set_count(), 1);
        assert_eq!(mem.max_accesses(), 3);
        assert_eq!(mem.total_accesses(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut mem = TasMemory::new(2);
        mem.test_and_set(0, 1);
        mem.test_and_set(0, 2);
        mem.reset();
        assert_eq!(mem.set_count(), 0);
        assert_eq!(mem.total_accesses(), 0);
        assert_eq!(mem.winner(0), None);
        assert!(mem.test_and_set(0, 2));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_probe_panics() {
        let mut mem = TasMemory::new(1);
        mem.test_and_set(1, 0);
    }
}
