//! Simulated shared memory: an indexed array of one-shot TAS locations.

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// One TAS location's state: winner (or unset) plus its access count,
/// co-located in a single 8-byte record so a probe touches one cache line
/// slot instead of three parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Location {
    /// Winning pid, or [`UNSET`] while the location is free. `u32` keeps
    /// the record dense; simulations are capped at `u32::MAX - 1`
    /// processes (enforced in [`TasMemory::test_and_set`]), far beyond
    /// what fits in memory anyway.
    winner: u32,
    /// Number of TAS operations that hit the location.
    accesses: u32,
}

/// Sentinel winner value for free locations.
const UNSET: u32 = u32::MAX;

/// The shared array of test-and-set locations used by a simulated
/// execution.
///
/// Besides the win flags themselves, the memory records which process won
/// each location and how often each location was probed — the contention
/// statistics several experiments report.
///
/// # Example
///
/// ```
/// use renaming_sim::TasMemory;
///
/// let mut mem = TasMemory::new(4);
/// assert!(mem.test_and_set(2, 0));   // process 0 wins location 2
/// assert!(!mem.test_and_set(2, 1));  // process 1 loses it
/// assert_eq!(mem.winner(2), Some(0));
/// assert_eq!(mem.accesses(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TasMemory {
    locations: Vec<Location>,
    /// Number of won locations, maintained incrementally so
    /// [`set_count`](Self::set_count) is O(1) (the runner reads it once
    /// per report, experiments may poll it per trial).
    wins: usize,
}

impl TasMemory {
    /// Creates `size` unset locations.
    pub fn new(size: usize) -> Self {
        Self {
            locations: vec![
                Location {
                    winner: UNSET,
                    accesses: 0,
                };
                size
            ],
            wins: 0,
        }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Returns `true` if the memory has no locations.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Performs a TAS on `location` on behalf of `pid`; returns `true` if
    /// the process won.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds or `pid >= u32::MAX`.
    #[inline]
    pub fn test_and_set(&mut self, location: usize, pid: ProcessId) -> bool {
        let loc = &mut self.locations[location];
        loc.accesses = loc.accesses.saturating_add(1);
        if loc.winner != UNSET {
            false
        } else {
            loc.winner = u32::try_from(pid).expect("process id exceeds u32 capacity");
            self.wins += 1;
            true
        }
    }

    /// Reads `location` without modifying it.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    #[inline]
    pub fn is_set(&self, location: usize) -> bool {
        self.locations[location].winner != UNSET
    }

    /// The process that won `location`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    pub fn winner(&self, location: usize) -> Option<ProcessId> {
        match self.locations[location].winner {
            UNSET => None,
            pid => Some(pid as ProcessId),
        }
    }

    /// How many TAS operations hit `location`.
    ///
    /// # Panics
    ///
    /// Panics if `location` is out of bounds.
    pub fn accesses(&self, location: usize) -> u32 {
        self.locations[location].accesses
    }

    /// Number of won locations (O(1): maintained incrementally).
    pub fn set_count(&self) -> usize {
        self.wins
    }

    /// The largest access count over all locations (peak contention).
    pub fn max_accesses(&self) -> u32 {
        self.locations.iter().map(|l| l.accesses).max().unwrap_or(0)
    }

    /// Total TAS operations across all locations.
    pub fn total_accesses(&self) -> u64 {
        self.locations.iter().map(|l| u64::from(l.accesses)).sum()
    }

    /// Resets all locations and statistics (for trial reuse).
    pub fn reset(&mut self) {
        self.locations.iter_mut().for_each(|l| {
            l.winner = UNSET;
            l.accesses = 0;
        });
        self.wins = 0;
    }

    /// Resets to `size` unset locations, reusing the allocation
    /// (runner-internal scratch reuse).
    pub(crate) fn reset_to(&mut self, size: usize) {
        self.locations.clear();
        self.locations.resize(
            size,
            Location {
                winner: UNSET,
                accesses: 0,
            },
        );
        self.wins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_unset() {
        let mem = TasMemory::new(3);
        assert_eq!(mem.len(), 3);
        assert!(!mem.is_empty());
        assert_eq!(mem.set_count(), 0);
        assert_eq!(mem.total_accesses(), 0);
        assert_eq!(mem.winner(0), None);
    }

    #[test]
    fn empty_memory() {
        let mem = TasMemory::new(0);
        assert!(mem.is_empty());
        assert_eq!(mem.max_accesses(), 0);
    }

    #[test]
    fn first_tas_wins_then_loses() {
        let mut mem = TasMemory::new(2);
        assert!(mem.test_and_set(1, 5));
        assert!(!mem.test_and_set(1, 6));
        assert!(!mem.test_and_set(1, 5));
        assert!(mem.is_set(1));
        assert!(!mem.is_set(0));
        assert_eq!(mem.winner(1), Some(5));
        assert_eq!(mem.accesses(1), 3);
        assert_eq!(mem.accesses(0), 0);
        assert_eq!(mem.set_count(), 1);
        assert_eq!(mem.max_accesses(), 3);
        assert_eq!(mem.total_accesses(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut mem = TasMemory::new(2);
        mem.test_and_set(0, 1);
        mem.test_and_set(0, 2);
        mem.reset();
        assert_eq!(mem.set_count(), 0);
        assert_eq!(mem.total_accesses(), 0);
        assert_eq!(mem.winner(0), None);
        assert!(mem.test_and_set(0, 2));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_probe_panics() {
        let mut mem = TasMemory::new(1);
        mem.test_and_set(1, 0);
    }
}
