//! Full probe-level execution traces.
//!
//! When enabled on an [`crate::Execution`], the runner records every
//! shared-memory step: which process probed which location and whether it
//! won. Traces power debugging, the contention analyses, and replay-style
//! assertions in tests (e.g. "the victim's probes all landed in batch 0
//! while it was starved").

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// One shared-memory step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global step index (0-based, in execution order).
    pub step: u64,
    /// The scheduled process.
    pub pid: ProcessId,
    /// The probed location.
    pub location: usize,
    /// Whether the TAS was won.
    pub won: bool,
}

/// The ordered list of steps of one execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (runner-internal).
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The probe sequence of one process, in order.
    pub fn probes_of(&self, pid: ProcessId) -> Vec<TraceEvent> {
        self.events.iter().copied().filter(|e| e.pid == pid).collect()
    }

    /// Locations ordered by how many probes they received, descending —
    /// the execution's contention hotspots.
    pub fn hotspots(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for e in &self.events {
            *counts.entry(e.location).or_insert(0) += 1;
        }
        let mut out: Vec<(usize, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The winning step for each location that was won, keyed by location.
    pub fn wins(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().filter(|e| e.won).collect()
    }

    /// Internal consistency check: at most one win per location, and wins
    /// precede every later losing probe of the same location.
    pub fn verify(&self) -> bool {
        let mut won_at: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for e in &self.events {
            if e.won {
                if won_at.insert(e.location, e.step).is_some() {
                    return false; // double win
                }
            } else if let Some(&w) = won_at.get(&e.location) {
                if e.step < w {
                    return false; // lost before anyone won
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(step: u64, pid: usize, location: usize, won: bool) -> TraceEvent {
        TraceEvent {
            step,
            pid,
            location,
            won,
        }
    }

    #[test]
    fn records_and_filters_events() {
        let mut t = ExecutionTrace::new();
        assert!(t.is_empty());
        t.push(event(0, 1, 5, true));
        t.push(event(1, 2, 5, false));
        t.push(event(2, 1, 6, false));
        assert_eq!(t.len(), 3);
        assert_eq!(t.probes_of(1).len(), 2);
        assert_eq!(t.probes_of(2).len(), 1);
        assert_eq!(t.wins().len(), 1);
    }

    #[test]
    fn hotspots_sorted_by_contention() {
        let mut t = ExecutionTrace::new();
        for i in 0..5 {
            t.push(event(i, 0, 9, false));
        }
        t.push(event(5, 0, 2, true));
        let hs = t.hotspots();
        assert_eq!(hs[0], (9, 5));
        assert_eq!(hs[1], (2, 1));
    }

    #[test]
    fn verify_accepts_legal_traces() {
        let mut t = ExecutionTrace::new();
        t.push(event(0, 0, 1, false));
        t.push(event(1, 1, 1, true));
        t.push(event(2, 2, 1, false));
        assert!(t.verify());
    }

    #[test]
    fn verify_rejects_double_wins() {
        let mut t = ExecutionTrace::new();
        t.push(event(0, 0, 1, true));
        t.push(event(1, 1, 1, true));
        assert!(!t.verify());
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = ExecutionTrace::new();
        t.push(event(0, 0, 3, true));
        let json = serde_json::to_string(&t).expect("serialize");
        let back: ExecutionTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t, back);
    }
}
