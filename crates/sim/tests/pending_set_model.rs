//! Model-based property tests for the scheduler's `PendingSet`: a random
//! sequence of add/remove operations must agree with a naive
//! `HashMap`-based reference model at every step.

use std::collections::HashMap;

use proptest::prelude::*;

use renaming_sim::adversary::PendingSet;

#[derive(Debug, Clone)]
enum Op {
    Add { pid: usize, location: usize },
    Remove { pid: usize },
}

fn ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..n, 0..64usize).prop_map(|(pid, location)| Op::Add { pid, location }),
            (0..n).prop_map(|pid| Op::Remove { pid }),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pending_set_matches_reference_model(ops in ops(24)) {
        let n = 24;
        let mut real = PendingSet::new(n);
        let mut model: HashMap<usize, usize> = HashMap::new();
        for op in ops {
            match op {
                Op::Add { pid, location } => {
                    if model.contains_key(&pid) {
                        continue; // double-add panics by contract; skip
                    }
                    real.add_for_test(pid, location);
                    model.insert(pid, location);
                }
                Op::Remove { pid } => {
                    if !model.contains_key(&pid) {
                        continue;
                    }
                    real.remove_for_test(pid);
                    model.remove(&pid);
                }
            }
            // Full agreement after every operation.
            prop_assert_eq!(real.len(), model.len());
            for pid in 0..n {
                prop_assert_eq!(real.contains(pid), model.contains_key(&pid), "pid {}", pid);
                if let Some(&loc) = model.get(&pid) {
                    prop_assert_eq!(real.location(pid), loc);
                    prop_assert!(real.pids_at(loc).contains(&pid));
                }
            }
            // Location index holds exactly the modelled pids.
            let mut by_loc: HashMap<usize, Vec<usize>> = HashMap::new();
            for (&pid, &loc) in &model {
                by_loc.entry(loc).or_default().push(pid);
            }
            for (&loc, pids) in &by_loc {
                let mut real_pids: Vec<usize> = real.pids_at(loc).to_vec();
                let mut model_pids = pids.clone();
                real_pids.sort_unstable();
                model_pids.sort_unstable();
                prop_assert_eq!(real_pids, model_pids, "location {}", loc);
            }
        }
    }

    #[test]
    fn iteration_agrees_with_membership(adds in prop::collection::hash_set(0..32usize, 0..32)) {
        let mut set = PendingSet::new(32);
        for &pid in &adds {
            set.add_for_test(pid, pid * 3);
        }
        let mut from_iter: Vec<usize> = set.iter().collect();
        from_iter.sort_unstable();
        let mut expected: Vec<usize> = adds.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(from_iter, expected);
    }
}
