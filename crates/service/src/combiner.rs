//! The flat-combining acquire front-end
//! ([`AcquireMode::Combining`](crate::AcquireMode)).
//!
//! Under heavy contention, N threads each driving an independent machine
//! is exactly the traffic shape the paper's algorithms are *worst* at:
//! every thread pays the full probe cost against slots the others are
//! busy filling. The paper's own core primitive — `BatchCall` — exists
//! to amortize that work across many simultaneous requests. This module
//! restructures service traffic into that shape:
//!
//! 1. each thread publishes its acquire request into a private,
//!    cache-line-padded [`RequestSlot`] (the same `repr(align(128))`
//!    discipline as [`crate::pool`]'s shards);
//! 2. one thread CASes itself into the **combiner** role, drains every
//!    pending slot, and satisfies the whole batch through a *single*
//!    session — kept resident with the role, so combining acquires pay
//!    no pool checkout/checkin traffic — in one rebatching sweep
//!    ([`PooledSession::acquire_batch`](crate::PooledSession::acquire_batch)
//!    rearms the machine between wins instead of rewinding it, so the
//!    batch walks the namespace once instead of `count` times);
//! 3. results are published back through the slots; non-combiners
//!    spin briefly, then park, re-contending for the combiner lock on
//!    every wake so a request can never strand.
//!
//! An *uncontended* acquirer short-circuits all three steps: it takes
//! the combiner role directly, serves itself as a batch of one (which
//! the rearm contract makes identical to the direct path), and drains
//! any request that raced in behind it — so single-thread combining
//! costs one CAS over the direct path instead of a full
//! publish/elect/publish round-trip.
//!
//! One thread serving the batch also means the contended TAS cache lines
//! stay resident on one core for the whole sweep instead of bouncing
//! between every acquirer — the flat-combining effect.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

use renaming_core::{Name, RenamingError};

use crate::service::{NameService, Worker};

/// Request-slot states. A slot cycles `EMPTY → PENDING → (DONE|FAILED)
/// → EMPTY`; only the owning thread moves it out of `EMPTY` and out of
/// `DONE`/`FAILED`, only the combiner moves it out of `PENDING`.
const EMPTY: u32 = 0;
const PENDING: u32 = 1;
const DONE: u32 = 2;
const FAILED: u32 = 3;

/// Spins before a waiter starts yielding. Long enough to cover a small
/// batch being served; short enough not to burn a core under
/// oversubscription. Skipped entirely on single-CPU boxes, where a spin
/// can never observe progress (the combiner is not running).
const SPIN_LIMIT: u32 = 256;

/// Yields between spinning and parking. On an oversubscribed box the
/// combiner usually holds the lock only because it was descheduled;
/// yielding hands it the CPU to finish, at a fraction of a park/unpark
/// round-trip.
const YIELD_LIMIT: u32 = 16;

/// Park timeout: waiters re-contend for the combiner lock at least this
/// often. The publish/park handshake (SeqCst on both sides, see
/// [`Combiner::drain`]) makes the combiner's unpark reliable, so this is
/// not the primary wake — it only bounds the stall of a request that was
/// published while *no* combiner was active (the waiter wakes, wins the
/// free lock, and serves itself).
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

/// How many uncontended combiner turns keep the *short-critical-section*
/// shape after the last observed contention (a failed fast-path lock
/// CAS). While it decays the combiner releases the lock around the
/// actual acquire, so a preemption almost never lands inside the role —
/// the pile-up trigger on oversubscribed boxes. At zero the combiner
/// holds the lock across the acquire instead, which is one atomic RMW
/// per op cheaper — the shape a single-threaded caller always sees.
const CONTENDED_WINDOW: u32 = 256;

/// Drain rounds per combining session. Each round serves every request
/// pending at its scan; a second round picks up requests that arrived
/// during the first. Bounded so the combiner cannot be captured forever
/// by a steady arrival stream (fairness: it eventually hands the role
/// to a newcomer).
const DRAIN_ROUNDS: usize = 4;

/// Per-thread cap on remembered `(combiner id, slot lease)` pairs —
/// the same bounded-TLS discipline as the pool's shard hints.
const LEASES_PER_THREAD: usize = 64;

/// One published acquire request. Padded to own its cache lines
/// outright, so a waiter spinning on its own slot never false-shares
/// with a neighbor's publication.
#[repr(align(128))]
struct RequestSlot {
    /// Leased by a thread (see [`SlotLease`]): only the lease holder may
    /// publish requests here.
    claimed: AtomicBool,
    state: AtomicU32,
    /// The acquired name's value; meaningful only in state `DONE`.
    result: AtomicUsize,
    /// Set by the lease holder just before it parks, cleared on wake.
    /// The combiner only touches the `waiter` mutex when this is set, so
    /// publishing to a spinning/yielding waiter stays cheap. Flag and
    /// state form a SeqCst store/load handshake on both sides, so a
    /// publication can never race a park into a missed unpark.
    parked: AtomicBool,
    /// The lease holder's park/unpark handle. Written at lease claim,
    /// cleared at lease drop; the combiner unparks through it after
    /// publishing a result to a parked waiter.
    waiter: Mutex<Option<Thread>>,
}

impl RequestSlot {
    fn new() -> Self {
        Self {
            claimed: AtomicBool::new(false),
            state: AtomicU32::new(EMPTY),
            result: AtomicUsize::new(0),
            parked: AtomicBool::new(false),
            waiter: Mutex::new(None),
        }
    }
}

/// Whether this box has a single hardware thread — cached once. Waiters
/// skip the spin phase there: with the combiner descheduled, a spin can
/// only burn the quantum the combiner needs.
fn single_cpu() -> bool {
    use std::sync::OnceLock;
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) == 1
    })
}

/// The combiner lock, padded so contending CASes on it never share a
/// line with any request slot.
#[repr(align(128))]
struct CombinerLock(AtomicBool);

/// The shared combining state: the slot array and the combiner role.
struct CombinerCore {
    slots: Box<[RequestSlot]>,
    lock: CombinerLock,
    /// The combiner's *resident* worker session. Whoever holds the
    /// combiner lock owns it: the session (and its TAS-line working
    /// set) travels with the role instead of bouncing through the pool
    /// on every acquire, so a combining acquire pays zero pool
    /// checkout/checkin traffic. Lazily populated from the pool by the
    /// first combiner.
    resident: UnsafeCell<Option<Box<Worker>>>,
    /// Occupancy mirror of `resident` (0 or 1), maintained under the
    /// lock but readable without it — the service's worker conservation
    /// accounting ([`NameService::resident_workers`]) reads it.
    resident_count: AtomicUsize,
    /// Published-request hint: incremented just before a waiter stores
    /// `PENDING`, decremented by the combiner per served request. Lets
    /// an uncontended combiner skip the full slot scan with one load; a
    /// stale zero is benign (the waiter re-contends for the lock itself,
    /// and the next combiner sees the count).
    queued: AtomicUsize,
    /// Contention decay counter (see [`CONTENDED_WINDOW`]): refreshed by
    /// every failed fast-path lock CAS, decremented per uncontended
    /// combiner turn.
    contended: AtomicU32,
    /// This core's key into the per-thread lease table.
    id: u64,
}

// SAFETY: `slots` and `lock` are atomics. `resident` is only accessed
// by the thread currently holding `lock`, whose Acquire CAS / Release
// store edges order every access to it across combiner handoffs.
unsafe impl Sync for CombinerCore {}

/// Identity source for combiner cores (monotonic, never reused), keying
/// each thread's slot leases per service.
fn next_combiner_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A thread's exclusive claim on one request slot of one combiner.
/// Dropping the lease (thread exit, or TLS eviction) releases the slot
/// for other threads; the `Arc` keeps the slot array alive even if the
/// service is gone.
struct SlotLease {
    core: Arc<CombinerCore>,
    index: usize,
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        let slot = &self.core.slots[self.index];
        *slot.waiter.lock().expect("combiner waiter poisoned") = None;
        // Release pairs with the Acquire CAS in `claim_slot`, ordering
        // the waiter clear before the slot's next claim.
        slot.claimed.store(false, Ordering::Release);
    }
}

thread_local! {
    static LEASES: RefCell<Vec<(u64, SlotLease)>> = const { RefCell::new(Vec::new()) };
}

/// The flat-combining front-end of one [`NameService`]. Constructed when
/// the service is built with
/// [`AcquireMode::Combining`](crate::AcquireMode::Combining).
pub(crate) struct Combiner {
    core: Arc<CombinerCore>,
}

impl std::fmt::Debug for Combiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combiner")
            .field("slots", &self.core.slots.len())
            .finish()
    }
}

impl Combiner {
    /// A combiner with one request slot per potential concurrent
    /// acquirer: twice the hardware parallelism (threads beyond that are
    /// not running, so their requests only queue), floored at 16 so an
    /// oversubscribed small box still queues its waiters through the
    /// batch path instead of spilling them to the direct fallback,
    /// power-of-two, bounded.
    pub(crate) fn new() -> Self {
        let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_slots((2 * parallelism).max(16))
    }

    /// A combiner with an explicit slot count (clamped to `2..=256`,
    /// rounded up to a power of two) — exposed for tests that need
    /// threads to outnumber slots deterministically.
    pub(crate) fn with_slots(slots: usize) -> Self {
        let slots = slots.clamp(2, 256).next_power_of_two();
        Self {
            core: Arc::new(CombinerCore {
                slots: (0..slots).map(|_| RequestSlot::new()).collect(),
                lock: CombinerLock(AtomicBool::new(false)),
                resident: UnsafeCell::new(None),
                resident_count: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                contended: AtomicU32::new(0),
                id: next_combiner_id(),
            }),
        }
    }

    /// The calling thread's leased slot index in this combiner, claiming
    /// one on first touch. `None` when every slot is leased by another
    /// live thread — the caller then falls back to the direct path.
    fn leased_slot(&self) -> Option<usize> {
        LEASES.with(|leases| {
            let mut leases = leases.borrow_mut();
            if let Some((_, lease)) = leases.iter().find(|(id, _)| *id == self.core.id) {
                return Some(lease.index);
            }
            let index = self.claim_slot()?;
            if leases.len() >= LEASES_PER_THREAD {
                leases.remove(0); // evict (and thereby release) the oldest
            }
            leases.push((self.core.id, SlotLease { core: Arc::clone(&self.core), index }));
            Some(index)
        })
    }

    fn claim_slot(&self) -> Option<usize> {
        for (index, slot) in self.core.slots.iter().enumerate() {
            if slot.claimed.load(Ordering::Relaxed) {
                continue;
            }
            if slot
                .claimed
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                *slot.waiter.lock().expect("combiner waiter poisoned") =
                    Some(std::thread::current());
                return Some(index);
            }
        }
        None
    }

    /// Acquires one name through the combining path.
    pub(crate) fn acquire(&self, service: &NameService) -> Result<Name, RenamingError> {
        // Fast path: an uncontended acquirer takes the combiner role
        // outright, without publishing a request. Its own acquire is a
        // batch of one — identical to the direct path by the rearm
        // contract (`reset` + drive, pinned by the golden tests) — and
        // any requests that raced in behind it are drained before the
        // role is released, so taking the shortcut never strands a
        // published request.
        if self
            .core
            .lock
            .0
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            let mut worker = self.take_resident(service);
            let contended = self.core.contended.load(Ordering::Relaxed);
            if contended == 0 {
                // Quiet shape: hold the role across the acquire. One
                // atomic RMW for the whole op — cheaper than the direct
                // path's pool checkout/checkin pair.
                let result = worker.session.acquire(&mut worker.rng);
                let wakeups = self.drain(&mut worker);
                let displaced = self.park_resident(worker);
                self.core.lock.0.store(false, Ordering::Release);
                for thread in wakeups {
                    thread.unpark();
                }
                if let Some(worker) = displaced {
                    service.checkin_worker(worker);
                }
                return result;
            }
            // Contended shape: release the role for the actual acquire,
            // so the lock covers only the resident handoffs (~a dozen ns
            // each) and a preemption almost never lands inside it — the
            // pile-up trigger on oversubscribed boxes. A thread that
            // takes the role meanwhile draws its own worker from the
            // pool, which is the direct-mode norm. (We hold the lock, so
            // the decay store cannot erase a concurrent refresh that
            // matters: refreshers are about to fail this very CAS again.)
            self.core.contended.store(contended - 1, Ordering::Relaxed);
            self.core.lock.0.store(false, Ordering::Release);
            let result = worker.session.acquire(&mut worker.rng);
            if self
                .core
                .lock
                .0
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let wakeups = self.drain(&mut worker);
                // A combiner that took the role while we ran unlocked may
                // have parked its own worker: keep that incumbent and
                // send ours back to the pool.
                let displaced = self.park_resident(worker);
                self.core.lock.0.store(false, Ordering::Release);
                for thread in wakeups {
                    thread.unpark();
                }
                if let Some(worker) = displaced {
                    service.checkin_worker(worker);
                }
            } else {
                // Someone else holds the role (and serves the queue):
                // our worker goes back to the pool instead.
                service.checkin_worker(worker);
            }
            return result;
        }
        // The lock CAS failed: remember the contention so the next
        // combiner turns keep their critical sections short.
        self.core.contended.store(CONTENDED_WINDOW, Ordering::Relaxed);
        let Some(index) = self.leased_slot() else {
            // Every slot leased: serve this thread directly. Correctness
            // is unaffected (both paths drive the same machines against
            // the same slots); only the batching amortization is lost.
            return service.acquire_direct();
        };
        let slot = &self.core.slots[index];
        // Publish the request: bump the queued hint first (Release keeps
        // it ordered before the state store, so a combiner that sees
        // PENDING also sees the count), then flip the slot.
        self.core.queued.fetch_add(1, Ordering::Release);
        slot.state.store(PENDING, Ordering::Release);

        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                DONE => {
                    let value = slot.result.load(Ordering::Relaxed);
                    slot.state.store(EMPTY, Ordering::Relaxed);
                    return Ok(Name::new(value));
                }
                FAILED => {
                    slot.state.store(EMPTY, Ordering::Relaxed);
                    return Err(RenamingError::NamespaceExhausted {
                        namespace: service.namespace_size(),
                    });
                }
                _ => {}
            }
            if self
                .core
                .lock
                .0
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let mut worker = self.take_resident(service);
                let wakeups = self.drain(&mut worker);
                let displaced = self.park_resident(worker);
                self.core.lock.0.store(false, Ordering::Release);
                for thread in wakeups {
                    thread.unpark();
                }
                if let Some(worker) = displaced {
                    service.checkin_worker(worker);
                }
                // Our own request was part of the drain (it was PENDING
                // when we took the lock), so the next state load returns
                // DONE or FAILED.
                continue;
            }
            spins += 1;
            if spins < SPIN_LIMIT && !single_cpu() {
                std::hint::spin_loop();
            } else if spins < SPIN_LIMIT + YIELD_LIMIT {
                // The lock holder is likely descheduled (certainly so on
                // a single-CPU box): hand it the rest of the quantum
                // instead of burning it, then re-contend.
                std::thread::yield_now();
            } else {
                // Dekker handshake with the combiner's publication: we
                // store the parked flag then re-load the state; the
                // combiner stores the state then loads the flag (all
                // SeqCst). At least one side must see the other, so
                // either we observe our result here and skip the park,
                // or the combiner observes the flag and unparks us —
                // a served request never sleeps out the full timeout.
                slot.parked.store(true, Ordering::SeqCst);
                if slot.state.load(Ordering::SeqCst) == PENDING {
                    std::thread::park_timeout(PARK_TIMEOUT);
                }
                slot.parked.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Takes the resident worker, falling back to a pool checkout the
    /// first time (or after [`Combiner::park_resident`] was never
    /// reached on a panic path). Caller must hold the combiner lock.
    fn take_resident(&self, service: &NameService) -> Box<Worker> {
        // SAFETY: the combiner lock is held (see `Sync` for CombinerCore).
        let resident = unsafe { &mut *self.core.resident.get() };
        self.core.resident_count.store(0, Ordering::Relaxed);
        resident
            .take()
            .unwrap_or_else(|| service.checkout_worker())
    }

    /// Stores the worker back as the resident session for the next
    /// combiner. Caller must hold the combiner lock.
    ///
    /// Returns the worker unparked when the seat is already occupied:
    /// on the contended shape, a thread that takes the role while we
    /// run unlocked checks out — and parks — its own worker, and
    /// overwriting it here would drop a session on the floor (breaking
    /// the `worker_count == pooled + retired + resident` conservation
    /// law). The caller routes the returned worker through
    /// [`NameService::checkin_worker`] after releasing the lock.
    #[must_use]
    fn park_resident(&self, worker: Box<Worker>) -> Option<Box<Worker>> {
        // SAFETY: the combiner lock is held (see `Sync` for CombinerCore).
        let resident = unsafe { &mut *self.core.resident.get() };
        if resident.is_some() {
            return Some(worker);
        }
        *resident = Some(worker);
        self.core.resident_count.store(1, Ordering::Relaxed);
        None
    }

    /// How many worker sessions are held resident by the combiner role
    /// right now (0 or 1) — part of the service's worker conservation
    /// law alongside the pooled and retired counts.
    pub(crate) fn resident_workers(&self) -> usize {
        self.core.resident_count.load(Ordering::Relaxed)
    }

    /// Serves every pending request through the combiner's worker.
    /// Caller holds the combiner lock; the returned threads must be
    /// unparked *after* releasing it, keeping futex syscalls out of the
    /// critical section (a long combiner hold is what cascades into
    /// pile-ups on oversubscribed boxes).
    fn drain(&self, worker: &mut Worker) -> Vec<Thread> {
        // `Vec::new` defers the allocation: a drain that finds nothing
        // pending (the uncontended fast path) costs only the hint load.
        let mut pending = Vec::new();
        let mut names: Vec<Name> = Vec::new();
        let mut wakeups = Vec::new();
        for _ in 0..DRAIN_ROUNDS {
            // The queued hint spares the uncontended turn the full slot
            // scan. A stale zero skips a request that was *just*
            // published — its owner is awake (it has not parked yet) and
            // re-contends for the lock itself, so nothing strands.
            if self.core.queued.load(Ordering::Acquire) == 0 {
                return wakeups;
            }
            pending.clear();
            for (index, slot) in self.core.slots.iter().enumerate() {
                if slot.state.load(Ordering::Acquire) == PENDING {
                    pending.push(index);
                }
            }
            if pending.is_empty() {
                return wakeups;
            }
            // One session serves the whole batch: the machine is rearmed
            // between wins, so its probe walk — and the TAS lines it
            // touches — is shared across every request in `pending`.
            // A batch error (namespace exhausted mid-sweep) leaves a short
            // `names`; the publication below fails the unserved remainder.
            names.clear();
            let _ = worker
                .session
                .acquire_batch(pending.len(), &mut worker.rng, &mut names);
            // Publish in slot order. On a partial batch (namespace
            // exhausted mid-sweep) the names that *were* won still go
            // out — they are real acquisitions — and the remainder fails.
            self.core.queued.fetch_sub(pending.len(), Ordering::Relaxed);
            for (served, &index) in pending.iter().enumerate() {
                let slot = &self.core.slots[index];
                let state = match names.get(served) {
                    Some(name) => {
                        slot.result.store(name.value(), Ordering::Relaxed);
                        DONE
                    }
                    None => FAILED,
                };
                // SeqCst store + SeqCst flag load is the combiner's half
                // of the park handshake (see the waiter's park branch):
                // a waiter that set its flag before this store is seen
                // here and unparked; one that sets it after sees the
                // state and never parks.
                slot.state.store(state, Ordering::SeqCst);
                if slot.parked.load(Ordering::SeqCst) {
                    let waiter = slot.waiter.lock().expect("combiner waiter poisoned");
                    if let Some(thread) = waiter.as_ref() {
                        wakeups.push(thread.clone());
                    }
                }
            }
        }
        wakeups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_clamp_and_round() {
        assert_eq!(Combiner::with_slots(0).core.slots.len(), 2);
        assert_eq!(Combiner::with_slots(3).core.slots.len(), 4);
        assert_eq!(Combiner::with_slots(usize::MAX).core.slots.len(), 256);
    }

    #[test]
    fn request_slots_own_their_cache_lines() {
        assert!(std::mem::align_of::<RequestSlot>() >= 128);
        assert!(std::mem::size_of::<RequestSlot>().is_multiple_of(128));
    }

    #[test]
    fn park_resident_keeps_the_incumbent_and_displaces_the_loser() {
        // Regression for the contended-shape race: thread A takes the
        // resident worker, runs its acquire unlocked, re-wins the lock
        // and parks — but meanwhile thread B became combiner, checked a
        // fresh worker out of the pool, and parked *it* as resident.
        // A's park must not overwrite (and thereby drop) B's worker; it
        // gets its own back for a pool checkin instead.
        let service = crate::NameService::builder(crate::Algorithm::Rebatching, 4)
            .build()
            .expect("build");
        let combiner = Combiner::with_slots(4);
        let first = service.checkout_worker();
        let second = service.checkout_worker();
        let created = service.worker_count();
        assert!(combiner.park_resident(first).is_none(), "empty seat parks");
        assert_eq!(combiner.resident_workers(), 1);
        let displaced = combiner
            .park_resident(second)
            .expect("occupied seat must displace, not drop");
        service.checkin_worker(displaced);
        assert_eq!(combiner.resident_workers(), 1, "incumbent stays seated");
        assert_eq!(
            service.pooled_workers() + combiner.resident_workers(),
            created,
            "worker conservation holds after a displaced park"
        );
    }

    #[test]
    fn leases_are_sticky_per_thread_and_released_on_exit() {
        let combiner = Combiner::with_slots(4);
        let a = combiner.leased_slot().expect("claim");
        assert_eq!(combiner.leased_slot(), Some(a), "lease is sticky");
        let core = Arc::clone(&combiner.core);
        std::thread::spawn(move || {
            let combiner = Combiner { core };
            let b = combiner.leased_slot().expect("claim");
            assert_ne!(a, b, "two live threads never share a slot");
            b
        })
        .join()
        .expect("join");
        // The spawned thread exited: its lease dropped, its slot is free
        // again (claimed flag cleared, waiter handle gone).
        let freed = combiner
            .core
            .slots
            .iter()
            .filter(|slot| !slot.claimed.load(Ordering::Relaxed))
            .count();
        assert_eq!(freed, 3, "only the live thread's slot stays claimed");
    }
}
