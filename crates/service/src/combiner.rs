//! The flat-combining acquire front-end
//! ([`AcquireMode::Combining`](crate::AcquireMode)).
//!
//! Under heavy contention, N threads each driving an independent machine
//! is exactly the traffic shape the paper's algorithms are *worst* at:
//! every thread pays the full probe cost against slots the others are
//! busy filling. The paper's own core primitive — `BatchCall` — exists
//! to amortize that work across many simultaneous requests. This module
//! restructures service traffic into that shape:
//!
//! 1. each waiter publishes its acquire request into a private,
//!    cache-line-padded request slot (see [`crate::slots`] — the same
//!    `repr(align(128))` discipline as [`crate::pool`]'s shards);
//! 2. one thread CASes itself into the **combiner** role, drains every
//!    pending slot, and satisfies the whole batch through a *single*
//!    session — kept resident with the role, so combining acquires pay
//!    no pool checkout/checkin traffic — in one rebatching sweep
//!    ([`PooledSession::acquire_batch`](crate::PooledSession::acquire_batch)
//!    rearms the machine between wins instead of rewinding it, so the
//!    batch walks the namespace once instead of `count` times);
//! 3. results are published back through the slots and waiters are
//!    notified through the unified wait/notify layer ([`crate::wait`]):
//!    a sync waiter spins briefly, then parks; an async waiter
//!    ([`crate::AsyncNameService`]) registers its task's waker instead.
//!    The drain loop completes slots and notifies through one code path
//!    regardless of kind.
//!
//! An *uncontended* acquirer short-circuits all three steps: it takes
//! the combiner role outright, serves itself as a batch of one (which
//! the rearm contract makes identical to the direct path), and drains
//! any request that raced in behind it — so single-thread combining
//! costs one CAS over the direct path instead of a full
//! publish/elect/publish round-trip.
//!
//! One thread serving the batch also means the contended TAS cache lines
//! stay resident on one core for the whole sweep instead of bouncing
//! between every acquirer — the flat-combining effect.
//!
//! # Liveness without timeouts
//!
//! A sync waiter re-contends for the combiner lock on every wake (and at
//! worst every [`PARK_TIMEOUT`]), so a request published while no
//! combiner was active can always serve itself. An async waiter has no
//! timeout — its only wake is the notification — so the combiner's exit
//! protocol closes the gap instead: after releasing the lock, the
//! combiner re-reads the queued-request hint and re-elects itself if the
//! hint is nonzero ([`Combiner::drain_and_release`]). All the accesses
//! involved (the publisher's hint increment, its `PENDING` store, its
//! failed lock CAS; the combiner's unlock and hint re-read) are SeqCst,
//! so in the single total order either the publisher's CAS sees the lock
//! free (and the publisher can become combiner itself), or the exiting
//! combiner's re-read sees the increment and drains again. A published
//! request can therefore never strand, waker or thread alike.

use std::cell::UnsafeCell;
use std::sync::Arc;
use std::time::Duration;

use crate::sync_shim::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use renaming_core::{Name, RenamingError};

use crate::service::{NameService, Worker};
use crate::slots::{SlotPoll, SlotTable};
use crate::wait::WaiterKind;

/// Spins before a waiter starts yielding. Long enough to cover a small
/// batch being served; short enough not to burn a core under
/// oversubscription. Skipped entirely on single-CPU boxes, where a spin
/// can never observe progress (the combiner is not running).
#[cfg(not(renaming_model))]
const SPIN_LIMIT: u32 = 256;
/// Model builds: every spin iteration is a scheduling point of the
/// interleaving checker, so a long spin phase only multiplies the state
/// space without adding behaviors (the checker's fair-yield rule already
/// guarantees each spin observes progress). Two iterations keep the
/// spin→yield→park ladder itself explored.
#[cfg(renaming_model)]
const SPIN_LIMIT: u32 = 2;

/// Yields between spinning and parking. On an oversubscribed box the
/// combiner usually holds the lock only because it was descheduled;
/// yielding hands it the CPU to finish, at a fraction of a park/unpark
/// round-trip.
#[cfg(not(renaming_model))]
const YIELD_LIMIT: u32 = 16;
/// Model builds: shortened like [`SPIN_LIMIT`].
#[cfg(renaming_model)]
const YIELD_LIMIT: u32 = 2;

/// Park timeout: sync waiters re-contend for the combiner lock at least
/// this often. The publish/park handshake (SeqCst on both sides, see
/// [`crate::wait`]) makes the combiner's unpark reliable, so this is not
/// the primary wake — it is a belt-and-suspenders bound on the stall of
/// a thread-waiter when no combiner is active (the waiter wakes, wins
/// the free lock, and serves itself). Async waiters have no analogous
/// timeout; they rely on the combiner's exit re-check (see the module
/// docs on liveness).
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

/// How many uncontended combiner turns keep the *short-critical-section*
/// shape after the last observed contention (a failed fast-path lock
/// CAS). While it decays the combiner releases the lock around the
/// actual acquire, so a preemption almost never lands inside the role —
/// the pile-up trigger on oversubscribed boxes. At zero the combiner
/// holds the lock across the acquire instead, which is one atomic RMW
/// per op cheaper — the shape a single-threaded caller always sees.
const CONTENDED_WINDOW: u32 = 256;

/// Drain rounds per combining session. Each round serves every request
/// pending at its scan; a second round picks up requests that arrived
/// during the first. Bounded so the combiner cannot be captured forever
/// by a steady arrival stream (fairness: it eventually hands the role
/// to a newcomer).
const DRAIN_ROUNDS: usize = 4;

/// Whether this box has a single hardware thread — cached once. Waiters
/// skip the spin phase there: with the combiner descheduled, a spin can
/// only burn the quantum the combiner needs.
#[cfg(not(renaming_model))]
fn single_cpu() -> bool {
    use std::sync::OnceLock;
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) == 1
    })
}

/// Model builds: the checker's virtual threads all "run", so the
/// single-CPU spin cutoff does not apply — and the host's CPU count must
/// not steer which branches the model explores.
#[cfg(renaming_model)]
fn single_cpu() -> bool {
    false
}

/// The combiner lock, padded so contending CASes on it never share a
/// line with any request slot.
#[repr(align(128))]
struct CombinerLock(AtomicBool);

/// The shared combining state: the slot table and the combiner role.
struct CombinerCore {
    /// The request-slot table (see [`crate::slots`]), shared with thread
    /// leases and in-flight async futures.
    table: Arc<SlotTable>,
    lock: CombinerLock,
    /// The combiner's *resident* worker session. Whoever holds the
    /// combiner lock owns it: the session (and its TAS-line working
    /// set) travels with the role instead of bouncing through the pool
    /// on every acquire, so a combining acquire pays zero pool
    /// checkout/checkin traffic. Lazily populated from the pool by the
    /// first combiner.
    resident: UnsafeCell<Option<Box<Worker>>>,
    /// Occupancy mirror of `resident` (0 or 1), maintained under the
    /// lock but readable without it — the service's worker conservation
    /// accounting ([`NameService::resident_workers`]) reads it.
    /// Release stores / Acquire load, so an off-lock reader gets a
    /// happens-before edge to the store it observes (free on x86).
    resident_count: AtomicUsize,
    /// Published-request hint: incremented just before a waiter stores
    /// `PENDING` ([`Combiner::announce`]), decremented by the combiner
    /// in one batched `fetch_sub` per drain round (covering every slot
    /// that round adopted) and by a cancelled async future that
    /// withdraws its unadopted request ([`Combiner::retract`]). Lets an
    /// uncontended combiner skip the full slot scan with one load. At
    /// any combiner's scan the hint is ≥ the number of slots the scan
    /// adopts (each adopted slot's increment is program-ordered before
    /// its `PENDING` store and consumed by exactly one later decrement)
    /// — asserted in the drain loop. A stale zero is benign for sync
    /// waiters (they re-contend for the lock themselves); for async
    /// waiters the SeqCst exit re-check makes it impossible to miss
    /// (see the module docs on liveness).
    queued: AtomicUsize,
    /// Contention decay counter (see [`CONTENDED_WINDOW`]): refreshed by
    /// every failed fast-path lock CAS, decremented per uncontended
    /// combiner turn.
    contended: AtomicU32,
}

// SAFETY: `table`, counters and `lock` are atomics/shared-immutable.
// `resident` is only accessed by the thread currently holding `lock`,
// whose CAS / store edges order every access to it across combiner
// handoffs.
unsafe impl Sync for CombinerCore {}

/// The flat-combining front-end of one [`NameService`]. Constructed when
/// the service is built with
/// [`AcquireMode::Combining`](crate::AcquireMode::Combining).
pub(crate) struct Combiner {
    core: Arc<CombinerCore>,
}

impl std::fmt::Debug for Combiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combiner")
            .field("slots", &self.core.table.len())
            .finish()
    }
}

impl Combiner {
    /// A combiner with one request slot per potential concurrent
    /// acquirer: twice the hardware parallelism (threads beyond that are
    /// not running, so their requests only queue), floored at 16 so an
    /// oversubscribed small box still queues its waiters through the
    /// batch path instead of spilling them to the direct fallback,
    /// power-of-two, bounded.
    pub(crate) fn new() -> Self {
        let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_slots((2 * parallelism).max(16))
    }

    /// A combiner with an explicit slot count (clamped to `2..=256`,
    /// rounded up to a power of two) — exposed for tests that need
    /// threads to outnumber slots deterministically.
    pub(crate) fn with_slots(slots: usize) -> Self {
        Self {
            core: Arc::new(CombinerCore {
                table: SlotTable::new(slots),
                lock: CombinerLock(AtomicBool::new(false)),
                resident: UnsafeCell::new(None),
                resident_count: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                contended: AtomicU32::new(0),
            }),
        }
    }

    /// The shared request-slot table (the async facade publishes into
    /// it directly).
    pub(crate) fn table(&self) -> &Arc<SlotTable> {
        &self.core.table
    }

    /// Tries to take the combiner role. SeqCst on both outcomes: the
    /// *failure* is the publisher's half of the exit-re-check handshake
    /// (a failed CAS that read `true` is ordered, in the single SeqCst
    /// order, before the lock-holder's unlock — and therefore before its
    /// queued re-read, which then cannot miss the publisher's
    /// increment).
    pub(crate) fn try_lock(&self) -> bool {
        self.core
            .lock
            .0
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases the combiner role. SeqCst: must precede the caller's
    /// queued re-read in the single total order (see `try_lock`).
    fn unlock(&self) {
        self.core.lock.0.store(false, Ordering::SeqCst);
    }

    /// Records a failed fast-path lock CAS, keeping the next
    /// [`CONTENDED_WINDOW`] combiner turns in the short-critical-section
    /// shape. Release (not Relaxed): pairs with the Acquire load in
    /// [`serve_locked`](Self::serve_locked) so the cross-thread read is
    /// a happens-before edge (free on x86; the model's race detector
    /// insists on it even for a heuristic).
    pub(crate) fn note_contention(&self) {
        self.core.contended.store(CONTENDED_WINDOW, Ordering::Release);
    }

    /// Bumps the published-request hint. Must be called *before* the
    /// slot's `PENDING` store, and pairs with exactly one later
    /// [`retract`](Self::retract) or combiner batch decrement.
    pub(crate) fn announce(&self) {
        self.core.queued.fetch_add(1, Ordering::SeqCst);
    }

    /// Consumes one published-request credit for a request withdrawn by
    /// a cancelled async future (the combiner consumes credits for the
    /// slots it adopts itself, batched per drain round).
    pub(crate) fn retract(&self) {
        self.core.queued.fetch_sub(1, Ordering::SeqCst);
    }

    /// The current published-request hint (tests).
    #[cfg(test)]
    pub(crate) fn queued_hint(&self) -> usize {
        self.core.queued.load(Ordering::SeqCst)
    }

    /// Releases the combiner role without draining (tests that stage a
    /// lock holder).
    #[cfg(test)]
    pub(crate) fn unlock_for_test(&self) {
        self.unlock();
    }

    /// Acquires one name through the combining path (sync waiters).
    pub(crate) fn acquire(&self, service: &NameService) -> Result<Name, RenamingError> {
        // Fast path: an uncontended acquirer takes the combiner role
        // outright, without publishing a request.
        if self.try_lock() {
            return self.serve_locked(service);
        }
        // The lock CAS failed: remember the contention so the next
        // combiner turns keep their critical sections short.
        self.note_contention();
        let Some(index) = self.core.table.leased_index() else {
            // Every slot leased: serve this thread directly. Correctness
            // is unaffected (both paths drive the same machines against
            // the same slots); only the batching amortization is lost.
            return service.acquire_direct();
        };
        let slot = self.core.table.slot(index);
        // Publish the request: bump the queued hint first (program order
        // on the SeqCst pair keeps it ordered before the state store, so
        // a combiner that sees PENDING also sees the count), then flip
        // the slot.
        self.announce();
        slot.publish();

        let mut spins = 0u32;
        loop {
            match slot.poll() {
                SlotPoll::Done(value) => {
                    slot.finish();
                    return Ok(Name::new(value));
                }
                SlotPoll::Failed => {
                    slot.finish();
                    return Err(RenamingError::NamespaceExhausted {
                        namespace: service.namespace_size(),
                    });
                }
                SlotPoll::Waiting => {}
            }
            if self.try_lock() {
                let worker = self.take_resident(service);
                self.drain_and_release(service, worker);
                // Our own request was part of the drain (it was PENDING
                // when we took the lock), so the next poll returns a
                // verdict.
                continue;
            }
            spins += 1;
            if spins < SPIN_LIMIT && !single_cpu() {
                crate::sync_shim::hint::spin_loop();
            } else if spins < SPIN_LIMIT + YIELD_LIMIT {
                // The lock holder is likely descheduled (certainly so on
                // a single-CPU box): hand it the rest of the quantum
                // instead of burning it, then re-contend.
                crate::sync_shim::thread::yield_now();
            } else {
                // Dekker handshake with the combiner's publication: we
                // engage the wait cell then re-load the state; the
                // combiner stores the state then loads the flag (all
                // SeqCst). At least one side must see the other, so
                // either we observe our result here and skip the park,
                // or the combiner observes the flag and unparks us —
                // a served request never sleeps out the full timeout.
                slot.wait.engage();
                if slot.in_flight() {
                    crate::sync_shim::thread::park_timeout(PARK_TIMEOUT);
                }
                slot.wait.disengage();
            }
        }
    }

    /// Serves the calling acquirer as the combiner. The caller holds
    /// the combiner lock; it is released before returning. Shared by
    /// the sync fast path and the async future's first poll.
    pub(crate) fn serve_locked(&self, service: &NameService) -> Result<Name, RenamingError> {
        let mut worker = self.take_resident(service);
        let contended = self.core.contended.load(Ordering::Acquire);
        if contended == 0 {
            // Quiet shape: hold the role across the acquire. One
            // atomic RMW for the whole op — cheaper than the direct
            // path's pool checkout/checkin pair.
            let result = worker.session.acquire(&mut worker.rng);
            self.drain_and_release(service, worker);
            return result;
        }
        // Contended shape: release the role for the actual acquire,
        // so the lock covers only the resident handoffs (~a dozen ns
        // each) and a preemption almost never lands inside it — the
        // pile-up trigger on oversubscribed boxes. A thread that
        // takes the role meanwhile draws its own worker from the
        // pool, which is the direct-mode norm. (We hold the lock, so
        // the decay store cannot erase a concurrent refresh that
        // matters: refreshers are about to fail this very CAS again.)
        self.core.contended.store(contended - 1, Ordering::Release);
        self.unlock();
        let result = worker.session.acquire(&mut worker.rng);
        if self.try_lock() {
            // A combiner that took the role while we ran unlocked may
            // have parked its own worker: `drain_and_release` keeps that
            // incumbent and sends ours back to the pool.
            self.drain_and_release(service, worker);
        } else {
            // Someone else holds the role (and serves the queue, and
            // re-checks the queue on its own exit): our worker goes back
            // to the pool instead.
            service.checkin_worker(worker);
        }
        result
    }

    /// Runs one full combiner turn for a waiter that just won the lock:
    /// take the resident worker, drain, release. Used by the async
    /// future's wait loop (the sync wait loop inlines the same calls).
    pub(crate) fn drain_as_combiner(&self, service: &NameService) {
        let worker = self.take_resident(service);
        self.drain_and_release(service, worker);
    }

    /// The combiner's exit protocol: drain, park the worker, release
    /// the lock, deliver notifications — then re-check the queued hint
    /// and re-elect itself if requests were published while it was
    /// letting go. The re-check is what guarantees liveness for async
    /// waiters, which cannot rely on a park timeout (see the module
    /// docs); it costs one SeqCst load on the uncontended path.
    ///
    /// The caller holds the combiner lock and passes in the worker it
    /// drained with; the lock is released (and the worker parked or
    /// returned to the pool) before returning.
    fn drain_and_release(&self, service: &NameService, mut worker: Box<Worker>) {
        loop {
            let notifications = self.drain(&mut worker);
            let displaced = self.park_resident(worker);
            self.unlock();
            // Notify after releasing the lock, keeping futex syscalls
            // and executor wake-ups out of the critical section (a long
            // combiner hold is what cascades into pile-ups on
            // oversubscribed boxes).
            for waiter in notifications {
                waiter.notify();
            }
            if let Some(worker) = displaced {
                service.checkin_worker(worker);
            }
            if self.core.queued.load(Ordering::SeqCst) == 0 || !self.try_lock() {
                // Either nothing is published (every future publisher's
                // failed lock CAS is SeqCst-after our unlock, so it can
                // re-elect against a free lock or be seen by the *next*
                // combiner's exit), or another combiner took over and
                // inherits the re-check obligation.
                return;
            }
            // A nonzero hint with nothing yet adopted means some
            // publisher sits in its announce→publish window (the hint
            // increment is program-ordered before the PENDING store).
            // Yield it the CPU before re-draining: re-electing is
            // otherwise a busy retry loop whose progress depends
            // entirely on that other thread being scheduled — the
            // interleaving checker proves it can starve the publisher
            // outright under a bounded scheduler, and on a real box
            // spinning through drain rounds against a descheduled
            // publisher burns the quantum it needs.
            crate::sync_shim::thread::yield_now();
            worker = self.take_resident(service);
        }
    }

    /// Takes the resident worker, falling back to a pool checkout the
    /// first time (or after [`Combiner::park_resident`] was never
    /// reached on a panic path). Caller must hold the combiner lock.
    fn take_resident(&self, service: &NameService) -> Box<Worker> {
        // SAFETY: the combiner lock is held (see `Sync` for CombinerCore).
        let resident = unsafe { &mut *self.core.resident.get() };
        self.core.resident_count.store(0, Ordering::Release);
        resident
            .take()
            .unwrap_or_else(|| service.checkout_worker())
    }

    /// Stores the worker back as the resident session for the next
    /// combiner. Caller must hold the combiner lock.
    ///
    /// Returns the worker unparked when the seat is already occupied:
    /// on the contended shape, a thread that takes the role while we
    /// run unlocked checks out — and parks — its own worker, and
    /// overwriting it here would drop a session on the floor (breaking
    /// the `worker_count == pooled + retired + resident` conservation
    /// law). The caller routes the returned worker through
    /// [`NameService::checkin_worker`] after releasing the lock.
    #[must_use]
    fn park_resident(&self, worker: Box<Worker>) -> Option<Box<Worker>> {
        // SAFETY: the combiner lock is held (see `Sync` for CombinerCore).
        let resident = unsafe { &mut *self.core.resident.get() };
        if resident.is_some() {
            return Some(worker);
        }
        *resident = Some(worker);
        self.core.resident_count.store(1, Ordering::Release);
        None
    }

    /// How many worker sessions are held resident by the combiner role
    /// right now (0 or 1) — part of the service's worker conservation
    /// law alongside the pooled and retired counts.
    pub(crate) fn resident_workers(&self) -> usize {
        self.core.resident_count.load(Ordering::Acquire)
    }

    /// Serves every pending request through the combiner's worker.
    /// Caller holds the combiner lock; the returned waiters must be
    /// notified *after* releasing it (see [`Self::drain_and_release`]).
    fn drain(&self, worker: &mut Worker) -> Vec<WaiterKind> {
        // `Vec::new` defers the allocation: a drain that finds nothing
        // pending (the uncontended fast path) costs only the hint load.
        let mut pending = Vec::new();
        let mut names: Vec<Name> = Vec::new();
        let mut notifications = Vec::new();
        for _ in 0..DRAIN_ROUNDS {
            // The queued hint spares the uncontended turn the full slot
            // scan. A stale zero skips a request that was *just*
            // published — benign: a sync owner is awake (it has not
            // parked yet) and re-contends for the lock itself; an async
            // owner is covered by the exit re-check in
            // `drain_and_release`, which runs after this return.
            if self.core.queued.load(Ordering::SeqCst) == 0 {
                return notifications;
            }
            pending.clear();
            for index in 0..self.core.table.len() {
                // PENDING → SERVING: adopting the request here (rather
                // than just reading PENDING) is what makes cancellation
                // sound — a cancelled future's withdraw CAS and this
                // adoption CAS target the same word, so exactly one of
                // them wins and a name can never be published into a
                // slot nobody owns.
                if self.core.table.slot(index).take_for_service() {
                    pending.push(index);
                }
            }
            if pending.is_empty() {
                return notifications;
            }
            // Hint/slot-table consistency: every slot just adopted had
            // announced itself (increment program-ordered before its
            // PENDING store, consumed by no one else before our batched
            // decrement below), so the hint cannot undercount the batch.
            debug_assert!(
                self.core.queued.load(Ordering::SeqCst) >= pending.len(),
                "queued hint fell below the slots adopted by this scan"
            );
            // One session serves the whole batch: the machine is rearmed
            // between wins, so its probe walk — and the TAS lines it
            // touches — is shared across every request in `pending`.
            // A batch error (namespace exhausted mid-sweep) leaves a short
            // `names`; the publication below fails the unserved remainder.
            names.clear();
            let _ = worker
                .session
                .acquire_batch(pending.len(), &mut worker.rng, &mut names);
            // Consume the adopted requests' hint credits in one batched
            // decrement (a cancelled async future that withdrew *before*
            // adoption consumed its own credit via `retract`).
            self.core.queued.fetch_sub(pending.len(), Ordering::SeqCst);
            // Publish in slot order. On a partial batch (namespace
            // exhausted mid-sweep) the names that *were* won still go
            // out — they are real acquisitions — and the remainder fails.
            for (served, &index) in pending.iter().enumerate() {
                let slot = self.core.table.slot(index);
                if let Some(waiter) = slot.fill(names.get(served).map(|name| name.value())) {
                    notifications.push(waiter);
                }
            }
        }
        notifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_clamp_and_round() {
        assert_eq!(Combiner::with_slots(0).core.table.len(), 2);
        assert_eq!(Combiner::with_slots(3).core.table.len(), 4);
        assert_eq!(Combiner::with_slots(usize::MAX).core.table.len(), 256);
    }

    #[test]
    fn park_resident_keeps_the_incumbent_and_displaces_the_loser() {
        // Regression for the contended-shape race: thread A takes the
        // resident worker, runs its acquire unlocked, re-wins the lock
        // and parks — but meanwhile thread B became combiner, checked a
        // fresh worker out of the pool, and parked *it* as resident.
        // A's park must not overwrite (and thereby drop) B's worker; it
        // gets its own back for a pool checkin instead.
        let service = crate::NameService::builder(crate::Algorithm::Rebatching, 4)
            .build()
            .expect("build");
        let combiner = Combiner::with_slots(4);
        let first = service.checkout_worker();
        let second = service.checkout_worker();
        let created = service.worker_count();
        assert!(combiner.park_resident(first).is_none(), "empty seat parks");
        assert_eq!(combiner.resident_workers(), 1);
        let displaced = combiner
            .park_resident(second)
            .expect("occupied seat must displace, not drop");
        service.checkin_worker(displaced);
        assert_eq!(combiner.resident_workers(), 1, "incumbent stays seated");
        assert_eq!(
            service.pooled_workers() + combiner.resident_workers(),
            created,
            "worker conservation holds after a displaced park"
        );
    }

    #[test]
    fn exit_recheck_drains_requests_published_against_a_held_lock() {
        // Stage the async liveness scenario deterministically on one
        // thread: a request is published while the lock is held (so its
        // publisher's lock CAS fails and it goes to sleep), and the
        // combiner's own exit must serve it — no timeout, no third
        // party.
        let service = crate::NameService::builder(crate::Algorithm::Rebatching, 4)
            .acquire_mode(crate::AcquireMode::Combining)
            .build()
            .expect("build");
        let combiner = service.combiner().expect("combining mode");
        assert!(combiner.try_lock(), "stage: we are the active combiner");
        let index = combiner.table().claim().expect("free slot");
        let slot = combiner.table().slot(index);
        combiner.announce();
        slot.publish();
        assert_eq!(combiner.queued_hint(), 1);
        // The combiner (us) exits: drain_and_release must notice the
        // published request via the exit re-check and serve it.
        combiner.drain_as_combiner(&service);
        let SlotPoll::Done(value) = slot.poll() else {
            panic!("exit re-check must have served the published request");
        };
        slot.finish();
        combiner.table().release(index);
        assert_eq!(combiner.queued_hint(), 0);
        service.release_name(Name::new(value)).expect("release");
        assert_eq!(service.held(), 0);
    }
}
