//! Model-checked suites over the *real* concurrency layer.
//!
//! Compiled only under `RUSTFLAGS="--cfg renaming_model"` (see
//! [`crate::sync_shim`]): the slot table, wait cell, sharded pool and
//! combiner below are the production structs, whose atomics and
//! park/unpark calls resolve to the [`renaming_model`] shim — every
//! interleaving the checker explores is an interleaving of the shipped
//! code, and every cross-thread read is audited by the vector-clock
//! race detector.
//!
//! The `crates/model/tests/` suites prove the *protocols* (on distilled
//! models, exhaustively, with seeded mutants); these tests prove the
//! *implementations* follow them. The small structures are explored
//! exhaustively; the full combiner end-to-end runs under an explicit
//! interleaving cap (its state space includes the whole acquire
//! machinery) and asserts cleanliness over that window.

use std::sync::Arc;
use std::time::Duration;

use renaming_model::{thread, Checker};

use crate::pool::ShardedPool;
use crate::slots::{SlotPoll, SlotTable};

/// The real `RequestSlot` adopt/withdraw CAS pair: in every
/// interleaving exactly one of the combiner's `take_for_service` and
/// the owner's `withdraw` wins, and an adopted request always yields a
/// consumable verdict.
#[test]
fn real_slot_adopt_and_withdraw_are_exclusive() {
    let report = Checker::new().check(|| {
        let table = SlotTable::new(2);
        let index = table.claim().expect("fresh table has slots");
        table.slot(index).publish();

        let adopter = Arc::clone(&table);
        let combiner = thread::spawn(move || {
            let slot = adopter.slot(index);
            if !slot.take_for_service() {
                return false;
            }
            if let Some(waiter) = slot.fill(Some(7)) {
                waiter.notify();
            }
            true
        });

        let slot = table.slot(index);
        let withdrew = slot.withdraw();
        let adopted = combiner.join().unwrap();
        assert!(
            withdrew ^ adopted,
            "exactly one of withdraw/adopt must win (withdrew: {withdrew}, adopted: {adopted})"
        );
        if adopted {
            loop {
                match slot.poll() {
                    SlotPoll::Done(value) => {
                        assert_eq!(value, 7, "adopted request sees the published payload");
                        slot.finish();
                        break;
                    }
                    SlotPoll::Failed => unreachable!("fill carried a name"),
                    SlotPoll::Waiting => thread::yield_now(),
                }
            }
        }
        table.release(index);
    });
    println!(
        "service-model/slot-exclusivity: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "real slot CAS pair must be explored exhaustively");
}

/// The real publish → engage → park / fill → notify handshake, on the
/// production `RequestSlot` + `WaitCell` (thread-waiter registration,
/// SeqCst Dekker pair, Release disengage): the waiter always observes
/// its verdict, in every interleaving, with no race reports.
#[test]
fn real_wait_cell_handshake_delivers_every_verdict() {
    let report = Checker::new().check(|| {
        let table = SlotTable::new(2);
        let index = table.claim().expect("slot");
        table.slot(index).wait.install_thread();

        let server = Arc::clone(&table);
        let combiner = thread::spawn(move || {
            let slot = server.slot(index);
            while !slot.take_for_service() {
                thread::yield_now();
            }
            if let Some(waiter) = slot.fill(Some(3)) {
                waiter.notify();
            }
        });

        let slot = table.slot(index);
        slot.publish();
        // The sync wait loop from `Combiner::acquire`, minus the lock
        // re-contention (there is no combiner lock in this scenario).
        loop {
            match slot.poll() {
                SlotPoll::Done(value) => {
                    assert_eq!(value, 3);
                    slot.finish();
                    break;
                }
                SlotPoll::Failed => unreachable!("fill carried a name"),
                SlotPoll::Waiting => {
                    slot.wait.engage();
                    if slot.in_flight() {
                        thread::park_timeout(Duration::from_micros(500));
                    }
                    slot.wait.disengage();
                }
            }
        }
        combiner.join().unwrap();
        table.release(index);
    });
    println!(
        "service-model/wait-handshake: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "real handshake must be explored exhaustively");
}

/// The real `ShardedPool` under a two-thread checkout/checkin race on
/// one shard: no worker conservation violation (`created == pooled +
/// retired` after quiescence) in any interleaving, and every
/// cross-thread pointer read carries a happens-before edge (the
/// Acquire/AcqRel strengthening documented in ARCHITECTURE.md).
#[test]
fn real_pool_churn_conserves_items() {
    let report = Checker::new().check(|| {
        let pool = Arc::new(ShardedPool::<u32>::new(1));
        pool.checkin(Box::new(1));

        let churners: Vec<_> = (0..2u32)
            .map(|i| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    // Checkout (stealing the seeded item or creating a
                    // fresh one), touch, checkin — the service's
                    // direct-path worker cycle.
                    let (item, created) = match pool.checkout() {
                        Some(item) => (item, 0u64),
                        None => (Box::new(10 + i), 1u64),
                    };
                    pool.checkin(item);
                    created
                })
            })
            .collect();
        let created: u64 = 1 + churners
            .into_iter()
            .map(|t| t.join().unwrap())
            .sum::<u64>();

        assert_eq!(
            pool.pooled() as u64 + pool.retired(),
            created,
            "pool conservation violated after quiescence"
        );
    });
    println!(
        "service-model/pool-churn: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "real pool churn must be explored exhaustively");
}

/// End-to-end: two threads drive `NameService::acquire` through the
/// real combining front-end (lock election, slot publication, drain,
/// resident-worker handoff). The state space includes the whole acquire
/// machinery, so this runs under an explicit interleaving cap rather
/// than to exhaustion; within the window every interleaving must
/// produce two distinct names, preserve worker conservation, and report
/// no races, deadlocks or livelocks.
#[test]
fn real_combiner_two_acquirers_stay_conservative() {
    let report = Checker::new()
        .max_interleavings(400)
        .max_steps(20_000)
        .random_iterations(0)
        .check(|| {
            let service = Arc::new(
                crate::NameService::builder(crate::Algorithm::Rebatching, 8)
                    .acquire_mode(crate::AcquireMode::Combining)
                    .seed_policy(crate::SeedPolicy::Fixed(7))
                    .build()
                    .expect("build"),
            );

            let acquirers: Vec<_> = (0..2)
                .map(|_| {
                    let service = Arc::clone(&service);
                    thread::spawn(move || {
                        let guard = service.acquire().expect("within capacity");
                        guard.value()
                        // guard drops here -> name released
                    })
                })
                .collect();
            let mut names: Vec<usize> = acquirers
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 2, "concurrent acquires must win distinct names");
            assert_eq!(service.held(), 0, "both guards released");

            let combiner = service.combiner().expect("combining mode");
            assert_eq!(
                service.pooled_workers() + combiner.resident_workers(),
                service.worker_count(),
                "worker conservation violated after quiescence"
            );
        });
    println!(
        "service-model/combiner-end-to-end: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
}
