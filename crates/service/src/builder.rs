//! Configuration surface: pick an algorithm, a TAS substrate and a seed
//! policy, get a [`NameService`].

use std::sync::Arc;

use renaming_baselines::{
    DoublingRenaming, LinearScanRenaming, SingleBatchRenaming, UniformRenaming,
};
use renaming_core::{
    AdaptiveLayout, AdaptiveRebatching, BatchLayout, Epsilon, FastAdaptiveRebatching,
    ProbeSchedule, Rebatching, RenamingError, DEFAULT_BETA,
};
use renaming_tas::rwtas::TournamentTas;
use renaming_tas::{TasArray, TicketTas};

use crate::namespace::{ServiceBackend, TournamentSlot};
use crate::pool::PoolKind;
use crate::{NameService, SeedPolicy};

/// The renaming algorithm backing a [`NameService`].
///
/// The paper's three algorithms plus the measured baselines; every
/// variant hands out unique names, they differ in namespace size, step
/// complexity and adaptivity (see the crate docs of `renaming-core` and
/// `renaming-baselines`).
///
/// # Example
///
/// Every algorithm serves the same acquire/release contract:
///
/// ```
/// use renaming_service::{Algorithm, NameService};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// for algorithm in Algorithm::all() {
///     let service = NameService::builder(algorithm, 8).build()?;
///     let guard = service.acquire()?;
///     assert!(guard.value() < service.namespace_size());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// ReBatching (§4): namespace `(1+ε)n`, `log log n + O(1)` steps
    /// w.h.p. The default choice.
    Rebatching,
    /// AdaptiveReBatching (§5.1): names `O(k)` for actual contention `k`.
    Adaptive,
    /// FastAdaptiveReBatching (§5.2): names `O(k)`, `O(k log log k)`
    /// total steps.
    FastAdaptive,
    /// Baseline: uniform random probing over the whole namespace.
    Uniform,
    /// Baseline: deterministic scan; optimal namespace, `Θ(n)` steps.
    LinearScan,
    /// Ablation A1: ReBatching's budget without the batch geometry.
    SingleBatch,
    /// Baseline: uniform probing over a doubling window.
    Doubling,
}

impl Algorithm {
    /// All selectable algorithms, paper order then baselines.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::Rebatching,
            Algorithm::Adaptive,
            Algorithm::FastAdaptive,
            Algorithm::Uniform,
            Algorithm::LinearScan,
            Algorithm::SingleBatch,
            Algorithm::Doubling,
        ]
    }
}

/// How a [`NameService`] routes its `acquire` hot path.
///
/// # Example
///
/// Both modes serve the same contract; single-threaded they produce
/// byte-identical sequences (a combining batch of one *is* a direct
/// acquire):
///
/// ```
/// use renaming_service::{AcquireMode, Algorithm, NameService, SeedPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = |mode: AcquireMode| -> Vec<usize> {
///     let service = NameService::builder(Algorithm::Rebatching, 8)
///         .acquire_mode(mode)
///         .seed_policy(SeedPolicy::Fixed(7))
///         .build()
///         .expect("build");
///     (0..10).map(|_| service.acquire().expect("name").value()).collect()
/// };
/// assert_eq!(seq(AcquireMode::Direct), seq(AcquireMode::Combining));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AcquireMode {
    /// Every thread drives its own checked-out session — the PR 5
    /// behaviour, unchanged. The default.
    #[default]
    Direct,
    /// Flat combining: threads publish requests into padded slots; one
    /// thread elects itself combiner and satisfies the whole batch
    /// through a single session in one rebatching sweep (the machine is
    /// rearmed, not reset, between wins — the paper's `BatchCall`
    /// amortization applied to service traffic). Best under heavy
    /// multi-thread contention; identical results single-threaded.
    Combining,
}

/// The test-and-set substrate under the namespace's slots.
///
/// # Example
///
/// Both substrates are long-lived — the tournament recycles names
/// through its epoch-stamped O(1) reset, so churn far beyond the
/// namespace size never exhausts it:
///
/// ```
/// use renaming_service::{Algorithm, NameService, TasBackend};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = NameService::builder(Algorithm::Rebatching, 4)
///     .tas_backend(TasBackend::Tournament)
///     .build()?;
/// assert!(service.supports_release());
/// for _ in 0..40 {
///     let guard = service.acquire()?;
///     assert!(guard.value() < service.namespace_size());
/// } // each drop releases: an epoch bump on the name's register tree
/// assert_eq!(service.held(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasBackend {
    /// Hardware atomics ([`renaming_tas::AtomicTas`]): the paper's model,
    /// resettable, so names recycle on guard drop. The default.
    Atomic,
    /// The register-based tournament ([`TournamentTas`] behind a
    /// ticketing adapter) — the §2/footnote-1 substitute built from
    /// read/write registers only. Long-lived like the atomic backend:
    /// releasing a name bumps its slot's epoch (O(1), no tree rebuild)
    /// and reissues the slot's contender tickets. Memory is
    /// `O(capacity)` *per slot* and every probe costs `Θ(log capacity)`
    /// register operations, so reserve it for demonstrations and small
    /// capacities.
    Tournament,
}

/// Builder for [`NameService`]: algorithm, capacity, slack, TAS backend
/// and seed policy.
///
/// # Example
///
/// ```
/// use renaming_service::{Algorithm, NameServiceBuilder, SeedPolicy, TasBackend};
/// use renaming_service::Epsilon;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = NameServiceBuilder::new(Algorithm::Adaptive, 128)
///     .epsilon(Epsilon::new(0.5)?)
///     .tas_backend(TasBackend::Atomic)
///     .seed_policy(SeedPolicy::Fixed(42))
///     .build()?;
/// let guard = service.acquire()?;
/// assert!(guard.value() < service.namespace_size());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NameServiceBuilder {
    algorithm: Algorithm,
    capacity: usize,
    epsilon: Epsilon,
    beta: usize,
    backend: TasBackend,
    seed_policy: SeedPolicy,
    pool_kind: PoolKind,
    pool_shards: Option<usize>,
    acquire_mode: AcquireMode,
    metrics: bool,
    oracle: bool,
}

impl NameServiceBuilder {
    /// Starts a build for `capacity` concurrent holders on `algorithm`,
    /// with the paper defaults everywhere else (`ε = 1`, `β = 3`, atomic
    /// TAS, entropy seeding).
    pub fn new(algorithm: Algorithm, capacity: usize) -> Self {
        Self {
            algorithm,
            capacity,
            epsilon: Epsilon::one(),
            beta: DEFAULT_BETA,
            backend: TasBackend::Atomic,
            seed_policy: SeedPolicy::Entropy,
            pool_kind: PoolKind::Sharded,
            pool_shards: None,
            acquire_mode: AcquireMode::Direct,
            metrics: false,
            oracle: false,
        }
    }

    /// Namespace slack `ε` (namespace `(1+ε)n`). Ignored by
    /// [`Algorithm::FastAdaptive`] (the paper fixes its `ε = 1`) and by
    /// the baselines (fixed slack ratios).
    #[must_use]
    pub fn epsilon(mut self, epsilon: Epsilon) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Backup probe count `β` (Eq. 2's `t_κ`). Ignored by the baselines.
    #[must_use]
    pub fn beta(mut self, beta: usize) -> Self {
        self.beta = beta;
        self
    }

    /// The TAS substrate (default [`TasBackend::Atomic`]).
    #[must_use]
    pub fn tas_backend(mut self, backend: TasBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The per-worker RNG seed policy (default [`SeedPolicy::Entropy`]).
    #[must_use]
    pub fn seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.seed_policy = policy;
        self
    }

    /// The session-pool implementation (default [`PoolKind::Sharded`],
    /// the lock-free pool). [`PoolKind::Mutex`] selects the serialized
    /// baseline the `service_throughput` experiment compares against.
    #[must_use]
    pub fn pool_kind(mut self, kind: PoolKind) -> Self {
        self.pool_kind = kind;
        self
    }

    /// Shard count for the sharded pool (default: one shard per
    /// hardware thread; rounded up to a power of two, clamped to
    /// `1..=1024`). Ignored by [`PoolKind::Mutex`].
    ///
    /// More shards spread check-ins across more cache lines; fewer
    /// shards keep the empty-pool probe walk shorter. The default is
    /// right unless threads far outnumber cores.
    #[must_use]
    pub fn pool_shards(mut self, shards: usize) -> Self {
        self.pool_shards = Some(shards);
        self
    }

    /// The acquire-path routing (default [`AcquireMode::Direct`]).
    /// [`AcquireMode::Combining`] batches concurrent acquires through a
    /// flat-combining front-end (see [`AcquireMode`]).
    #[must_use]
    pub fn acquire_mode(mut self, mode: AcquireMode) -> Self {
        self.acquire_mode = mode;
        self
    }

    /// Opt into latency metrics (default **off**): per-operation log₂
    /// histograms over acquire and release, readable via
    /// [`NameService::metrics`] and exported by the wire server's
    /// `Stats` endpoint. Disabled, the hot paths read no clocks at all
    /// — see [`crate::LatencyHistogram`].
    #[must_use]
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Opt into the concurrency oracle (default **off**): vector-clock
    /// event recording on every acquire/release plus a post-run history
    /// checker proving the paper's safety claims over the actual
    /// execution — no overlapping holds of one name, the namespace
    /// bound respected at every cut, every win released or held at
    /// exit. Read the verdict via [`NameService::oracle_verdict`] (or
    /// the raw recorder via [`NameService::oracle`]). Disabled, the hot
    /// paths record nothing — same zero-cost discipline as `metrics`.
    #[must_use]
    pub fn oracle(mut self, enabled: bool) -> Self {
        self.oracle = enabled;
        self
    }

    /// Builds the service.
    ///
    /// # Errors
    ///
    /// Propagates the backing algorithm's parameter validation (bad `ε`
    /// or `β`, capacity too small for the algorithm).
    pub fn build(self) -> Result<NameService, RenamingError> {
        if self.capacity == 0 {
            return Err(RenamingError::TooFewProcesses { n: 0, min: 1 });
        }
        let backend = match self.backend {
            TasBackend::Atomic => self.build_atomic()?,
            TasBackend::Tournament => self.build_tournament()?,
        };
        let mut service = NameService::with_backend_pool(
            backend,
            self.seed_policy,
            self.pool_kind,
            self.pool_shards,
            self.acquire_mode,
        );
        if self.metrics {
            service.enable_metrics();
        }
        if self.oracle {
            service.enable_oracle();
        }
        Ok(service)
    }

    fn build_atomic(self) -> Result<Arc<dyn ServiceBackend>, RenamingError> {
        Ok(match self.algorithm {
            Algorithm::Rebatching => {
                Arc::new(Rebatching::new(self.capacity, self.epsilon, self.beta)?)
            }
            Algorithm::Adaptive => {
                Arc::new(AdaptiveRebatching::new(self.capacity, self.epsilon, self.beta)?)
            }
            Algorithm::FastAdaptive => {
                Arc::new(FastAdaptiveRebatching::new(self.capacity, self.beta)?)
            }
            Algorithm::Uniform => Arc::new(UniformRenaming::new(self.capacity)),
            Algorithm::LinearScan => Arc::new(LinearScanRenaming::new(self.capacity)),
            Algorithm::SingleBatch => Arc::new(SingleBatchRenaming::new(self.capacity)),
            Algorithm::Doubling => Arc::new(DoublingRenaming::new(self.capacity)),
        })
    }

    fn build_tournament(self) -> Result<Arc<dyn ServiceBackend>, RenamingError> {
        // Contenders per slot *per epoch*: every probe of a slot burns one
        // of its current epoch's tickets, and the window is reissued on
        // every release (the epoch bump), so the budget only has to cover
        // the probes that land between a win and its release — bounded by
        // the concurrent acquirers, i.e. by capacity. Provision double
        // that (floored for tiny services). A slot that does drain an
        // epoch keeps losing cleanly until its holder releases, which at
        // worst surfaces as NamespaceExhausted, never as a safety
        // violation — and the release replenishes it.
        let contenders = (2 * self.capacity).max(8);
        let slots = |len: usize| -> Arc<TasArray<TournamentSlot>> {
            Arc::new(TasArray::from_slots(
                (0..len)
                    .map(|_| TicketTas::new(TournamentTas::new(contenders)))
                    .collect(),
            ))
        };
        let schedule = ProbeSchedule::paper(self.epsilon, self.beta)?;
        Ok(match self.algorithm {
            Algorithm::Rebatching => {
                let layout = BatchLayout::shared(self.capacity, schedule)?;
                let slots = slots(layout.namespace_size());
                Arc::new(Rebatching::from_parts(layout, slots)?)
            }
            Algorithm::Adaptive => {
                let layout = Arc::new(AdaptiveLayout::for_capacity(self.capacity, schedule)?);
                let slots = slots(layout.total_size());
                Arc::new(AdaptiveRebatching::from_parts(layout, slots)?)
            }
            Algorithm::FastAdaptive => {
                let schedule = ProbeSchedule::paper(Epsilon::one(), self.beta)?;
                let layout = Arc::new(AdaptiveLayout::for_capacity(self.capacity, schedule)?);
                let slots = slots(layout.total_size());
                Arc::new(FastAdaptiveRebatching::from_parts(layout, slots)?)
            }
            Algorithm::Uniform => {
                Arc::new(UniformRenaming::from_parts(self.capacity, slots(2 * self.capacity))?)
            }
            Algorithm::LinearScan => {
                Arc::new(LinearScanRenaming::from_parts(self.capacity, slots(self.capacity))?)
            }
            Algorithm::SingleBatch => {
                let budget = (usize::BITS - (2 * self.capacity).leading_zeros()) as usize + 3;
                Arc::new(SingleBatchRenaming::from_parts(
                    self.capacity,
                    budget,
                    slots(2 * self.capacity),
                )?)
            }
            Algorithm::Doubling => Arc::new(DoublingRenaming::from_parts(
                self.capacity,
                2,
                slots(4 * self.capacity),
            )?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_builds_and_serves_on_atomics() {
        for algorithm in Algorithm::all() {
            let service = NameServiceBuilder::new(algorithm, 16)
                .seed_policy(SeedPolicy::Fixed(3))
                .build()
                .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
            let a = service.acquire().unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
            let b = service.acquire().unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
            assert_ne!(a.value(), b.value(), "{algorithm:?}");
            assert!(service.supports_release(), "{algorithm:?}");
            drop(a);
            drop(b);
            assert_eq!(service.held(), 0, "{algorithm:?}");
        }
    }

    #[test]
    fn tournament_backend_builds_and_recycles_for_every_algorithm() {
        for algorithm in Algorithm::all() {
            let service = NameServiceBuilder::new(algorithm, 4)
                .tas_backend(TasBackend::Tournament)
                .seed_policy(SeedPolicy::Fixed(5))
                .build()
                .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
            assert!(service.supports_release(), "{algorithm:?}");
            // Churn beyond the per-epoch ticket budget: only the epoch
            // reset on release makes this terminate successfully.
            for _ in 0..30 {
                let guard = service
                    .acquire()
                    .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
                assert!(guard.value() < service.namespace_size(), "{algorithm:?}");
            }
            assert_eq!(service.held(), 0, "{algorithm:?}: drops must recycle");
        }
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let err = NameServiceBuilder::new(Algorithm::Rebatching, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, RenamingError::TooFewProcesses { n: 0, min: 1 });
    }

    #[test]
    fn epsilon_shapes_the_namespace() {
        let tight = NameService::builder(Algorithm::Rebatching, 64)
            .epsilon(Epsilon::new(0.25).expect("valid"))
            .build()
            .expect("build");
        let loose = NameService::builder(Algorithm::Rebatching, 64)
            .epsilon(Epsilon::new(2.0).expect("valid"))
            .build()
            .expect("build");
        assert!(tight.namespace_size() < loose.namespace_size());
        assert_eq!(tight.namespace_size(), 80); // (1 + 0.25) * 64
    }
}
