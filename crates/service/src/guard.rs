//! RAII ownership of an acquired name.

use std::fmt;
use std::ops::Deref;

use renaming_core::{Name, RenamingError};

use crate::NameService;

/// Owned access to one acquired name; the name is released back to the
/// service when the guard drops.
///
/// Obtained from [`NameService::acquire`]. While the guard lives, no
/// other thread can hold the same name — that is the renaming
/// guarantee — so the value can be used as a dense slot index into
/// shared arrays (announcement tables, striped counters, ...).
///
/// Every built-in backend recycles on drop: atomic slots reset their
/// flag, tournament slots bump their epoch (both O(1)). Only a custom
/// [`Namespace`](crate::Namespace) implementation without release
/// support (see [`NameService::supports_release`]) leaks the name on
/// drop; call [`release`](Self::release) instead of dropping to observe
/// the backend's answer explicitly.
///
/// # Example
///
/// Dropping the guard is the release:
///
/// ```
/// use renaming_service::{Algorithm, NameService};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = NameService::builder(Algorithm::Rebatching, 8).build()?;
/// let guard = service.acquire()?;
/// assert_eq!(service.held(), 1);
/// drop(guard);
/// assert_eq!(service.held(), 0, "drop released the name");
/// # Ok(())
/// # }
/// ```
#[must_use = "dropping the guard immediately releases the name"]
pub struct NameGuard<'s> {
    service: &'s NameService,
    name: Name,
    armed: bool,
}

impl<'s> NameGuard<'s> {
    pub(crate) fn new(service: &'s NameService, name: Name) -> Self {
        Self {
            service,
            name,
            armed: true,
        }
    }

    /// The held name.
    pub fn name(&self) -> Name {
        self.name
    }

    /// The held name's integer value (always `< namespace_size`).
    pub fn value(&self) -> usize {
        self.name.value()
    }

    /// The service this guard belongs to.
    pub fn service(&self) -> &'s NameService {
        self.service
    }

    /// Releases the name now, surfacing the backend's answer (drop
    /// swallows it).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::ReleaseUnsupported`] if a custom
    /// backend is one-shot (no built-in backend is — the register
    /// tournament recycles through its epoch-stamped reset); the name
    /// then stays taken.
    ///
    /// # Example
    ///
    /// Explicit release works on every built-in substrate, including
    /// the register-based tournament:
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService, TasBackend};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let service = NameService::builder(Algorithm::Rebatching, 4)
    ///     .tas_backend(TasBackend::Tournament)
    ///     .build()?;
    /// let guard = service.acquire()?;
    /// guard.release()?;
    /// assert_eq!(service.held(), 0, "the slot reopened");
    /// # Ok(())
    /// # }
    /// ```
    pub fn release(mut self) -> Result<(), RenamingError> {
        self.armed = false;
        self.service.release_name(self.name)
    }

    /// Detaches the name from the guard **without** releasing it. The
    /// caller takes over ownership and is responsible for an eventual
    /// [`NameService::release_name`].
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let service = NameService::builder(Algorithm::Rebatching, 4).build()?;
    /// let name = service.acquire()?.into_name();
    /// assert_eq!(service.held(), 1, "detached names stay held");
    /// service.release_name(name)?;
    /// assert_eq!(service.held(), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn into_name(mut self) -> Name {
        self.armed = false;
        self.name
    }
}

impl Deref for NameGuard<'_> {
    type Target = Name;

    fn deref(&self) -> &Name {
        &self.name
    }
}

impl Drop for NameGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // A custom one-shot backend would reject the release; leaking
            // the slot is the documented drop behaviour there. Built-in
            // backends always accept. The guard-drop entry point lets the
            // oracle record this as a `GuardDrop` rather than an explicit
            // release.
            let _ = self.service.release_name_from_guard(self.name);
        }
    }
}

impl fmt::Debug for NameGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameGuard")
            .field("name", &self.name)
            .field("algorithm", &self.service.algorithm())
            .finish()
    }
}

impl fmt::Display for NameGuard<'_> {
    /// Forwards to the name, so guards drop into format strings.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.name, f)
    }
}
