//! The [`NameService`] front-end: pooled sessions, per-stream RNGs, RAII
//! guards.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::SeedableRng;

use renaming_core::{FastRng, Name, RenamingError};

use renaming_oracle::Oracle;

use crate::builder::{AcquireMode, NameServiceBuilder};
use crate::combiner::Combiner;
use crate::guard::NameGuard;
use crate::metrics::ServiceMetrics;
use crate::oracle::OracleVerdict;
use crate::namespace::{PooledSession, ServiceBackend};
use crate::pool::{MutexPool, PoolKind, ShardedPool};
use crate::Algorithm;

/// How [`NameService`] seeds the per-worker coin-flip streams.
///
/// # Example
///
/// Fixed seeding makes single-threaded acquisition sequences a pure
/// function of the builder configuration:
///
/// ```
/// use renaming_service::{Algorithm, NameService, SeedPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let run = || -> Result<Vec<usize>, Box<dyn std::error::Error>> {
///     let service = NameService::builder(Algorithm::Rebatching, 16)
///         .seed_policy(SeedPolicy::Fixed(42))
///         .build()?;
///     Ok((0..10).map(|_| service.acquire().map(|g| g.value()).expect("name")).collect())
/// };
/// assert_eq!(run()?, run()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Derive stream `i`'s seed deterministically from this base via a
    /// SplitMix64 increment. A service used from one thread at a time
    /// then produces a reproducible acquisition sequence — the mode
    /// experiments and tests want.
    Fixed(u64),
    /// Seed each stream from the system clock and a process-wide
    /// counter: distinct streams per service instance and run.
    Entropy,
}

impl SeedPolicy {
    /// The seed of worker stream `stream`.
    fn stream_seed(self, stream: u64) -> u64 {
        match self {
            // The SplitMix64 increment keeps distinct streams far apart
            // in seed space even for consecutive stream ids.
            SeedPolicy::Fixed(base) => {
                base.wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            }
            SeedPolicy::Entropy => {
                static COUNTER: AtomicU64 = AtomicU64::new(0);
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                nanos
                    ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ COUNTER.fetch_add(1, Ordering::Relaxed).rotate_left(32)
            }
        }
    }
}

/// One pooled worker: a reusable machine session plus its private RNG
/// stream. The stream id (and therefore the RNG seed) is assigned once,
/// at construction — never at checkout — so which pool slot a worker
/// lands in has no effect on the names it produces.
///
/// `pub(crate)` so the combining front-end can check one out and drive
/// its session through a whole batch.
pub(crate) struct Worker {
    pub(crate) session: Box<dyn PooledSession>,
    pub(crate) rng: FastRng,
}

/// The checkout pool: either the sharded lock-free pool (default) or the
/// original mutex-guarded vector (see [`PoolKind`]).
// Under the model cfg the variants' sizes diverge (the model Mutex
// carries instrumentation state); boxing would penalize the normal
// build for a test-only configuration.
#[cfg_attr(renaming_model, allow(clippy::large_enum_variant))]
enum SessionPool {
    Sharded(ShardedPool<Worker>),
    Mutex(MutexPool<Worker>),
}

impl SessionPool {
    fn checkout(&self) -> Option<Box<Worker>> {
        match self {
            SessionPool::Sharded(pool) => pool.checkout(),
            SessionPool::Mutex(pool) => pool.checkout(),
        }
    }

    fn checkin(&self, worker: Box<Worker>) {
        match self {
            SessionPool::Sharded(pool) => pool.checkin(worker),
            SessionPool::Mutex(pool) => pool.checkin(worker),
        }
    }

    fn pooled(&self) -> usize {
        match self {
            SessionPool::Sharded(pool) => pool.pooled(),
            SessionPool::Mutex(pool) => pool.pooled(),
        }
    }

    fn retired(&self) -> u64 {
        match self {
            SessionPool::Sharded(pool) => pool.retired(),
            SessionPool::Mutex(_) => 0,
        }
    }

    fn kind(&self) -> PoolKind {
        match self {
            SessionPool::Sharded(_) => PoolKind::Sharded,
            SessionPool::Mutex(_) => PoolKind::Mutex,
        }
    }

    fn shards(&self) -> Option<usize> {
        match self {
            SessionPool::Sharded(pool) => Some(pool.shards()),
            SessionPool::Mutex(_) => None,
        }
    }
}

/// A thread-safe, long-lived renaming service: `acquire` from any
/// thread, get an RAII [`NameGuard`], drop it to recycle the name.
///
/// The service wraps one [`ServiceBackend`] (any of the paper's
/// algorithms or the baselines, over hardware atomics or the
/// register-based tournament — see [`NameServiceBuilder`]) and owns a
/// pool of per-worker [`PooledSession`]s with private [`FastRng`]
/// streams. An acquire checks a worker out of the pool (creating one
/// only when the pool is empty, so the steady-state worker count tracks
/// the peak concurrency), drives its reusable machine, and checks it
/// back in: after warm-up, no machine construction, no RNG construction
/// and no allocation per operation — callers just write
/// `let guard = service.acquire()?`.
///
/// By default the pool is the sharded lock-free one
/// ([`PoolKind::Sharded`]): checkout is an atomic `swap` on a
/// cache-line-padded, thread-hinted shard slot, with work-stealing from
/// neighboring shards, so the acquire path has no global lock at all.
///
/// # Example
///
/// ```
/// use renaming_service::{Algorithm, NameService};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = NameService::builder(Algorithm::Rebatching, 64).build()?;
/// let guard = service.acquire()?;
/// assert!(guard.value() < service.namespace_size());
/// drop(guard); // name recycled
/// assert_eq!(service.held(), 0);
/// # Ok(())
/// # }
/// ```
pub struct NameService {
    backend: Arc<dyn ServiceBackend>,
    pool: SessionPool,
    seed_policy: SeedPolicy,
    /// Next worker stream id; also the number of workers ever created.
    streams: AtomicU64,
    /// `Some` iff the builder selected [`AcquireMode::Combining`]: the
    /// flat-combining front-end acquires route through. `None` is the
    /// direct path, byte-identical to pre-combining releases.
    combiner: Option<Combiner>,
    /// `Some` iff the builder enabled latency metrics
    /// ([`NameServiceBuilder::metrics`]). `None` — the default — is the
    /// zero-cost disabled state: the hot paths pay one never-taken
    /// branch and no clock reads.
    metrics: Option<Arc<ServiceMetrics>>,
    /// `Some` iff the builder enabled the concurrency oracle
    /// ([`NameServiceBuilder::oracle`]). Same zero-cost-when-off
    /// discipline as `metrics`: disabled is one never-taken branch.
    oracle: Option<Arc<Oracle>>,
}

impl NameService {
    /// Starts building a service for `capacity` concurrent holders on
    /// `algorithm` (atomic TAS backend, paper-default parameters).
    pub fn builder(algorithm: Algorithm, capacity: usize) -> NameServiceBuilder {
        NameServiceBuilder::new(algorithm, capacity)
    }

    /// Wraps an explicit backend — the escape hatch for backends the
    /// [`NameServiceBuilder`] enums do not cover (custom probe
    /// schedules, counting instrumentation, hand-built objects). Uses
    /// the default sharded pool; see
    /// [`with_backend_pool`](Self::with_backend_pool) to choose.
    pub fn with_backend(backend: Arc<dyn ServiceBackend>, seed_policy: SeedPolicy) -> Self {
        Self::with_backend_pool(
            backend,
            seed_policy,
            PoolKind::Sharded,
            None,
            AcquireMode::Direct,
        )
    }

    /// As [`with_backend`](Self::with_backend), additionally choosing
    /// the session-pool implementation, (for the sharded pool) the
    /// shard count, and the acquire front-end. `shards: None` uses one
    /// shard per hardware thread.
    pub fn with_backend_pool(
        backend: Arc<dyn ServiceBackend>,
        seed_policy: SeedPolicy,
        pool: PoolKind,
        shards: Option<usize>,
        acquire_mode: AcquireMode,
    ) -> Self {
        let pool = match pool {
            PoolKind::Sharded => SessionPool::Sharded(ShardedPool::new(
                shards.unwrap_or_else(ShardedPool::<Worker>::default_shards),
            )),
            PoolKind::Mutex => SessionPool::Mutex(MutexPool::new()),
        };
        Self {
            backend,
            pool,
            seed_policy,
            streams: AtomicU64::new(0),
            combiner: (acquire_mode == AcquireMode::Combining).then(Combiner::new),
            metrics: None,
            oracle: None,
        }
    }

    /// Attaches latency metrics — the builder's `metrics(true)` hook.
    /// Takes `&mut self` so it can only happen before the service is
    /// shared, keeping the enabled/disabled decision fixed for the
    /// service's lifetime (the hot path reads it branch-predictably).
    pub(crate) fn enable_metrics(&mut self) {
        self.metrics = Some(Arc::new(ServiceMetrics::new()));
    }

    /// The latency metrics, if the service was built with
    /// [`NameServiceBuilder::metrics`]`(true)` — `None` means disabled
    /// (the default; the acquire/release paths then read no clocks).
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let service = NameService::builder(Algorithm::Rebatching, 8)
    ///     .metrics(true)
    ///     .build()?;
    /// drop(service.acquire()?);
    /// let snap = service.metrics().expect("enabled").snapshot();
    /// assert_eq!(snap.acquire.count(), 1);
    /// assert_eq!(snap.release.count(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(&self) -> Option<&Arc<ServiceMetrics>> {
        self.metrics.as_ref()
    }

    /// Attaches the concurrency oracle — the builder's `oracle(true)`
    /// hook, public so [`with_backend`](Self::with_backend) escape-hatch
    /// services (custom backends the builder enums do not cover) can be
    /// instrumented too. Takes `&mut self` for the same reason as
    /// `enable_metrics`: the enabled/disabled decision is fixed before
    /// the service is shared.
    pub fn enable_oracle(&mut self) {
        self.oracle = Some(Arc::new(Oracle::new(
            self.backend.namespace_size(),
            self.backend.capacity(),
        )));
    }

    /// The concurrency oracle, if the service was built with
    /// [`NameServiceBuilder::oracle`]`(true)` — `None` means disabled
    /// (the default; the acquire/release paths then record nothing).
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let service = NameService::builder(Algorithm::Rebatching, 8)
    ///     .oracle(true)
    ///     .build()?;
    /// drop(service.acquire()?);
    /// let report = service.oracle().expect("enabled").verdict();
    /// assert!(report.is_clean() && report.drained());
    /// # Ok(())
    /// # }
    /// ```
    pub fn oracle(&self) -> Option<&Arc<Oracle>> {
        self.oracle.as_ref()
    }

    /// Checks the recorded history *and* the service's own quiescent
    /// counters in one verdict: the history checker's report, the
    /// worker conservation law, and agreement between the history's
    /// live count and the backend's [`held`](Self::held). `None` if the
    /// oracle is disabled. Meaningful at quiescence (all acquiring
    /// threads joined); see [`OracleVerdict`].
    pub fn oracle_verdict(&self) -> Option<OracleVerdict> {
        let oracle = self.oracle.as_ref()?;
        Some(OracleVerdict {
            history: oracle.verdict(),
            workers: renaming_oracle::WorkerCounts {
                created: self.worker_count() as u64,
                pooled: self.pooled_workers() as u64,
                retired: self.retired_workers(),
                resident: self.resident_workers() as u64,
            },
            held: self.held(),
        })
    }

    /// Acquires a unique name, returning an RAII guard that releases it
    /// on drop.
    ///
    /// Callable from any number of threads concurrently (up to
    /// [`capacity`](Self::capacity) names may be held at once).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] when the namespace
    /// cannot hold another name.
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let service = NameService::builder(Algorithm::FastAdaptive, 8).build()?;
    /// let a = service.acquire()?;
    /// let b = service.acquire()?;
    /// assert_ne!(a.value(), b.value(), "live guards hold distinct names");
    /// # Ok(())
    /// # }
    /// ```
    pub fn acquire(&self) -> Result<NameGuard<'_>, RenamingError> {
        self.acquire_name().map(|name| NameGuard::new(self, name))
    }

    /// Acquires a raw name without a guard. The caller owns it and is
    /// responsible for an eventual [`release_name`](Self::release_name).
    ///
    /// # Errors
    ///
    /// As for [`acquire`](Self::acquire).
    pub fn acquire_name(&self) -> Result<Name, RenamingError> {
        // Oracle disabled (the default): one never-taken branch, no
        // recording — the zero-cost-when-disabled discipline.
        let Some(oracle) = &self.oracle else {
            return self.acquire_name_timed();
        };
        oracle.acquire_start();
        let result = self.acquire_name_timed();
        match &result {
            Ok(name) => oracle.acquire_win(name.value()),
            Err(_) => oracle.acquire_fail(),
        }
        result
    }

    fn acquire_name_timed(&self) -> Result<Name, RenamingError> {
        // Metrics disabled (the default): one never-taken branch, no
        // clock reads — the zero-cost-when-disabled discipline.
        let Some(metrics) = &self.metrics else {
            return self.acquire_name_inner();
        };
        let start = std::time::Instant::now();
        let result = self.acquire_name_inner();
        metrics.acquire.record(start.elapsed());
        result
    }

    fn acquire_name_inner(&self) -> Result<Name, RenamingError> {
        match &self.combiner {
            Some(combiner) => combiner.acquire(self),
            None => self.acquire_direct(),
        }
    }

    /// The direct acquire path: check a worker out, drive one
    /// acquisition, check it back in. This is the whole of
    /// [`AcquireMode::Direct`] and the combining front-end's fallback
    /// when every request slot is taken.
    pub(crate) fn acquire_direct(&self) -> Result<Name, RenamingError> {
        let mut worker = self.checkout();
        let result = worker.session.acquire(&mut worker.rng);
        self.pool.checkin(worker);
        result
    }

    /// Releases a raw name previously obtained from
    /// [`acquire_name`](Self::acquire_name) (or detached via
    /// [`NameGuard::into_name`]).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::ReleaseUnsupported`] if a custom
    /// backend is one-shot; every built-in backend (atomic and the
    /// epoch-resettable tournament) accepts the release.
    ///
    /// # Panics
    ///
    /// May panic if `name` is not currently held — a caller bug.
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let service = NameService::builder(Algorithm::Rebatching, 4).build()?;
    /// let name = service.acquire_name()?;
    /// assert_eq!(service.held(), 1);
    /// service.release_name(name)?;
    /// assert_eq!(service.held(), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn release_name(&self, name: Name) -> Result<(), RenamingError> {
        // The oracle must record *before* the backend resets the slot:
        // the published clock has to be visible to the name's next
        // winner (see the channel contract in `renaming_oracle`).
        if let Some(oracle) = &self.oracle {
            oracle.release(name.value());
        }
        self.release_name_timed(name)
    }

    /// The RAII release path: identical to
    /// [`release_name`](Self::release_name) except the oracle records
    /// the return as a `GuardDrop` event, so histories distinguish
    /// explicit releases from guard drops.
    pub(crate) fn release_name_from_guard(&self, name: Name) -> Result<(), RenamingError> {
        if let Some(oracle) = &self.oracle {
            oracle.guard_drop(name.value());
        }
        self.release_name_timed(name)
    }

    fn release_name_timed(&self, name: Name) -> Result<(), RenamingError> {
        let Some(metrics) = &self.metrics else {
            return self.backend.release(name);
        };
        let start = std::time::Instant::now();
        let result = self.backend.release(name);
        metrics.release.record(start.elapsed());
        result
    }

    /// The namespace size `m`: every acquired name is in `0..m`.
    pub fn namespace_size(&self) -> usize {
        self.backend.namespace_size()
    }

    /// The maximum number of simultaneously held names.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    /// Names currently held. A relaxed-counter read: intentionally
    /// approximate while acquires/releases are in flight (it sits on the
    /// hot path), exact once the service is quiescent.
    pub fn held(&self) -> usize {
        self.backend.held()
    }

    /// The backing algorithm's label (e.g. `"rebatching"`).
    pub fn algorithm(&self) -> &'static str {
        self.backend.algorithm()
    }

    /// Whether dropping a [`NameGuard`] actually recycles the name on
    /// this backend. `true` for every backend the builder can produce;
    /// only a custom one-shot [`ServiceBackend`] reports `false`.
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_service::{Algorithm, NameService, TasBackend};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let atomic = NameService::builder(Algorithm::Rebatching, 4).build()?;
    /// assert!(atomic.supports_release());
    ///
    /// // The register tournament recycles too (epoch-stamped reset).
    /// let tournament = NameService::builder(Algorithm::Rebatching, 4)
    ///     .tas_backend(TasBackend::Tournament)
    ///     .build()?;
    /// assert!(tournament.supports_release());
    /// # Ok(())
    /// # }
    /// ```
    pub fn supports_release(&self) -> bool {
        self.backend.supports_release()
    }

    /// Workers (sessions + RNG streams) created so far. Tracks the peak
    /// number of concurrent acquires; under sustained overflow of a full
    /// sharded pool it can exceed it (surplus idle workers are retired
    /// rather than pooled without bound).
    ///
    /// The load is `Acquire`, pairing with the `AcqRel` increment in the
    /// checkout slow path, so the count is exact once the service is
    /// quiescent (e.g. after joining all acquiring threads — the
    /// conservation law `worker_count == pooled_workers +
    /// retired_workers + resident_workers` the torture tests assert).
    /// While acquires are in flight it is a snapshot, advisory like
    /// every concurrent counter.
    pub fn worker_count(&self) -> usize {
        self.streams.load(Ordering::Acquire) as usize
    }

    /// Workers currently idle in the checkout pool (advisory under
    /// concurrency).
    pub fn pooled_workers(&self) -> usize {
        self.pool.pooled()
    }

    /// Workers the sharded pool has dropped because every slot was
    /// already occupied at check-in (always `0` for the mutex pool,
    /// which grows without bound instead). When the service is idle,
    /// `worker_count() == pooled_workers() + retired_workers() +
    /// resident_workers()` — the no-leak conservation law the torture
    /// tests assert.
    pub fn retired_workers(&self) -> u64 {
        self.pool.retired()
    }

    /// Workers held resident by the combining front-end's combiner role
    /// (`0` or `1`; always `0` in [`AcquireMode::Direct`]). The resident
    /// session travels with the combiner lock instead of cycling through
    /// the pool — see the worker conservation law on
    /// [`retired_workers`](Self::retired_workers).
    pub fn resident_workers(&self) -> usize {
        self.combiner.as_ref().map_or(0, Combiner::resident_workers)
    }

    /// Which session-pool implementation this service checks workers
    /// out of.
    pub fn pool_kind(&self) -> PoolKind {
        self.pool.kind()
    }

    /// The sharded pool's shard count, or `None` for the mutex pool.
    pub fn pool_shard_count(&self) -> Option<usize> {
        self.pool.shards()
    }

    /// The shared backend.
    pub fn backend(&self) -> &Arc<dyn ServiceBackend> {
        &self.backend
    }

    /// Which acquire front-end this service routes through.
    pub fn acquire_mode(&self) -> AcquireMode {
        if self.combiner.is_some() {
            AcquireMode::Combining
        } else {
            AcquireMode::Direct
        }
    }

    /// The combining front-end, if this service was built with
    /// [`AcquireMode::Combining`] — the async facade publishes into its
    /// slot table directly.
    pub(crate) fn combiner(&self) -> Option<&Combiner> {
        self.combiner.as_ref()
    }

    /// Oracle hooks for the async facade, which publishes into the
    /// combiner's slot table directly instead of going through
    /// [`acquire_name`](Self::acquire_name). Each is a no-op when the
    /// oracle is disabled. The *recording* participant is the polling
    /// (or dropping) task's thread — the thread that observes the
    /// outcome — matching the sync path's convention that the
    /// requester, not the combiner, records the win.
    pub(crate) fn oracle_note_start(&self) {
        if let Some(oracle) = &self.oracle {
            oracle.acquire_start();
        }
    }

    /// Records an async win; see [`oracle_note_start`](Self::oracle_note_start).
    pub(crate) fn oracle_note_win(&self, name: Name) {
        if let Some(oracle) = &self.oracle {
            oracle.acquire_win(name.value());
        }
    }

    /// Records an async failure; see [`oracle_note_start`](Self::oracle_note_start).
    pub(crate) fn oracle_note_fail(&self) {
        if let Some(oracle) = &self.oracle {
            oracle.acquire_fail();
        }
    }

    /// Checks a worker out for the combining front-end. It usually stays
    /// resident with the combiner role (the role's Acquire/Release lock
    /// edges hand it between combiners); [`Self::checkin_worker`] takes
    /// it back when two combiners raced and the resident seat is taken.
    pub(crate) fn checkout_worker(&self) -> Box<Worker> {
        self.checkout()
    }

    /// Returns a combining-front-end worker to the checkout pool when
    /// the combiner role already holds a resident worker.
    pub(crate) fn checkin_worker(&self, worker: Box<Worker>) {
        self.pool.checkin(worker);
    }

    fn checkout(&self) -> Box<Worker> {
        if let Some(worker) = self.pool.checkout() {
            return worker;
        }
        // Bounded slow path: only reached when every shard slot (or the
        // mutex vector) is empty. Stream ids — and with them the RNG
        // seeds — are fixed here, at construction, so pool placement
        // never changes a worker's coin flips. AcqRel pairs with the
        // Acquire read in `worker_count`, keeping the post-quiescence
        // conservation law exact.
        let stream = self.streams.fetch_add(1, Ordering::AcqRel);
        Box::new(Worker {
            session: self.backend.open_session(),
            rng: FastRng::seed_from_u64(self.seed_policy.stream_seed(stream)),
        })
    }
}

impl fmt::Debug for NameService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameService")
            .field("algorithm", &self.algorithm())
            .field("capacity", &self.capacity())
            .field("namespace_size", &self.namespace_size())
            .field("held", &self.held())
            .field("workers", &self.worker_count())
            .field("pool", &self.pool_kind())
            .field("seed_policy", &self.seed_policy)
            .field("acquire_mode", &self.acquire_mode())
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TasBackend;

    #[test]
    fn acquire_release_cycle_recycles_names() {
        let service = NameService::builder(Algorithm::Rebatching, 4)
            .seed_policy(SeedPolicy::Fixed(7))
            .build()
            .expect("build");
        // Far more acquisitions than the namespace holds: only recycling
        // makes this terminate successfully.
        for _ in 0..100 {
            let guard = service.acquire().expect("within capacity");
            assert!(guard.value() < service.namespace_size());
        }
        assert_eq!(service.held(), 0);
        // Single-threaded use needs exactly one pooled worker.
        assert_eq!(service.worker_count(), 1);
        assert_eq!(service.pooled_workers(), 1);
    }

    #[test]
    fn concurrent_holders_are_distinct() {
        let service = NameService::builder(Algorithm::FastAdaptive, 16)
            .build()
            .expect("build");
        let guards: Vec<_> = (0..16).map(|_| service.acquire().expect("name")).collect();
        let mut values: Vec<usize> = guards.iter().map(|g| g.value()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 16, "duplicate names among live guards");
        assert_eq!(service.held(), 16);
        drop(guards);
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn fixed_seed_policy_reproduces_sequences() {
        let sequence = |seed: u64| -> Vec<usize> {
            let service = NameService::builder(Algorithm::Adaptive, 32)
                .seed_policy(SeedPolicy::Fixed(seed))
                .build()
                .expect("build");
            (0..20)
                .map(|_| {
                    let guard = service.acquire().expect("name");
                    guard.value()
                })
                .collect()
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43), "seeds should matter");
    }

    #[test]
    fn both_pools_produce_identical_single_thread_sequences() {
        let sequence = |pool: PoolKind| -> Vec<usize> {
            let service = NameService::builder(Algorithm::Rebatching, 32)
                .pool_kind(pool)
                .seed_policy(SeedPolicy::Fixed(11))
                .build()
                .expect("build");
            assert_eq!(service.pool_kind(), pool);
            (0..30)
                .map(|_| service.acquire().expect("name").value())
                .collect()
        };
        assert_eq!(
            sequence(PoolKind::Sharded),
            sequence(PoolKind::Mutex),
            "pool choice must be invisible to single-threaded callers"
        );
    }

    #[test]
    fn guard_accessors_and_detach() {
        let service = NameService::builder(Algorithm::LinearScan, 4)
            .build()
            .expect("build");
        let guard = service.acquire().expect("name");
        assert_eq!(guard.name().value(), guard.value());
        assert_eq!(guard.service().algorithm(), "linear-scan");
        assert_eq!(format!("{guard}"), format!("{}", guard.name()));
        let name = guard.into_name();
        assert_eq!(service.held(), 1, "detached name stays held");
        service.release_name(name).expect("manual release");
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn tournament_backend_recycles_on_guard_drop() {
        let service = NameService::builder(Algorithm::Rebatching, 4)
            .tas_backend(TasBackend::Tournament)
            .build()
            .expect("build");
        assert!(service.supports_release());
        let guard = service.acquire().expect("name");
        assert!(guard.value() < service.namespace_size());
        guard.release().expect("tournament releases via epoch reset");
        assert_eq!(service.held(), 0);
        // Churn far beyond the namespace (and beyond any slot's
        // per-epoch ticket budget): only drop-recycling makes this pass.
        for _ in 0..60 {
            let guard = service.acquire().expect("within capacity");
            std::hint::black_box(guard.value());
        }
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn sharded_service_survives_thread_churn() {
        // More threads than shards, churn far beyond capacity: the
        // service must neither duplicate names nor lose workers.
        let service = NameService::builder(Algorithm::Rebatching, 16)
            .pool_shards(1)
            .seed_policy(SeedPolicy::Fixed(3))
            .build()
            .expect("build");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let service = &service;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let guard = service.acquire().expect("within capacity");
                        std::hint::black_box(guard.value());
                    }
                });
            }
        });
        assert_eq!(service.held(), 0);
        // Conservation: once idle, every worker ever created is either
        // pooled or was retired on overflow — nothing leaks.
        assert_eq!(
            service.worker_count() as u64,
            service.pooled_workers() as u64 + service.retired_workers(),
        );
    }
}
