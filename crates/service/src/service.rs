//! The [`NameService`] front-end: pooled sessions, per-stream RNGs, RAII
//! guards.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::SeedableRng;

use renaming_core::{FastRng, Name, RenamingError};

use crate::builder::NameServiceBuilder;
use crate::guard::NameGuard;
use crate::namespace::{PooledSession, ServiceBackend};
use crate::Algorithm;

/// How [`NameService`] seeds the per-worker coin-flip streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Derive stream `i`'s seed deterministically from this base via a
    /// SplitMix64 increment. A service used from one thread at a time
    /// then produces a reproducible acquisition sequence — the mode
    /// experiments and tests want.
    Fixed(u64),
    /// Seed each stream from the system clock and a process-wide
    /// counter: distinct streams per service instance and run.
    Entropy,
}

impl SeedPolicy {
    /// The seed of worker stream `stream`.
    fn stream_seed(self, stream: u64) -> u64 {
        match self {
            // The SplitMix64 increment keeps distinct streams far apart
            // in seed space even for consecutive stream ids.
            SeedPolicy::Fixed(base) => {
                base.wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            }
            SeedPolicy::Entropy => {
                static COUNTER: AtomicU64 = AtomicU64::new(0);
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                nanos
                    ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ COUNTER.fetch_add(1, Ordering::Relaxed).rotate_left(32)
            }
        }
    }
}

/// One pooled worker: a reusable machine session plus its private RNG
/// stream.
struct Worker {
    session: Box<dyn PooledSession>,
    rng: FastRng,
}

/// A thread-safe, long-lived renaming service: `acquire` from any
/// thread, get an RAII [`NameGuard`], drop it to recycle the name.
///
/// The service wraps one [`ServiceBackend`] (any of the paper's
/// algorithms or the baselines, over hardware atomics or the
/// register-based tournament — see [`NameServiceBuilder`]) and owns a
/// pool of per-worker [`PooledSession`]s with private [`FastRng`]
/// streams. An acquire checks a worker out of the pool (creating one
/// only when the pool is empty, so the steady-state worker count equals
/// the peak concurrency), drives its reusable machine, and checks it
/// back in: after warm-up, no machine construction, no RNG construction
/// and no allocation per operation — callers just write
/// `let guard = service.acquire()?`.
///
/// # Example
///
/// ```
/// use renaming_service::{Algorithm, NameService};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = NameService::builder(Algorithm::Rebatching, 64).build()?;
/// let guard = service.acquire()?;
/// assert!(guard.value() < service.namespace_size());
/// drop(guard); // name recycled
/// assert_eq!(service.held(), 0);
/// # Ok(())
/// # }
/// ```
pub struct NameService {
    backend: Arc<dyn ServiceBackend>,
    pool: Mutex<Vec<Worker>>,
    seed_policy: SeedPolicy,
    /// Next worker stream id; also the number of workers ever created.
    streams: AtomicU64,
}

impl NameService {
    /// Starts building a service for `capacity` concurrent holders on
    /// `algorithm` (atomic TAS backend, paper-default parameters).
    pub fn builder(algorithm: Algorithm, capacity: usize) -> NameServiceBuilder {
        NameServiceBuilder::new(algorithm, capacity)
    }

    /// Wraps an explicit backend — the escape hatch for backends the
    /// [`NameServiceBuilder`] enums do not cover (custom probe
    /// schedules, counting instrumentation, hand-built objects).
    pub fn with_backend(backend: Arc<dyn ServiceBackend>, seed_policy: SeedPolicy) -> Self {
        Self {
            backend,
            pool: Mutex::new(Vec::new()),
            seed_policy,
            streams: AtomicU64::new(0),
        }
    }

    /// Acquires a unique name, returning an RAII guard that releases it
    /// on drop.
    ///
    /// Callable from any number of threads concurrently (up to
    /// [`capacity`](Self::capacity) names may be held at once).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] when the namespace
    /// cannot hold another name.
    pub fn acquire(&self) -> Result<NameGuard<'_>, RenamingError> {
        self.acquire_name().map(|name| NameGuard::new(self, name))
    }

    /// Acquires a raw name without a guard. The caller owns it and is
    /// responsible for an eventual [`release_name`](Self::release_name).
    ///
    /// # Errors
    ///
    /// As for [`acquire`](Self::acquire).
    pub fn acquire_name(&self) -> Result<Name, RenamingError> {
        let mut worker = self.checkout();
        let result = worker.session.acquire(&mut worker.rng);
        self.checkin(worker);
        result
    }

    /// Releases a raw name previously obtained from
    /// [`acquire_name`](Self::acquire_name) (or detached via
    /// [`NameGuard::into_name`]).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::ReleaseUnsupported`] on one-shot
    /// backends.
    ///
    /// # Panics
    ///
    /// May panic if `name` is not currently held — a caller bug.
    pub fn release_name(&self, name: Name) -> Result<(), RenamingError> {
        self.backend.release(name)
    }

    /// The namespace size `m`: every acquired name is in `0..m`.
    pub fn namespace_size(&self) -> usize {
        self.backend.namespace_size()
    }

    /// The maximum number of simultaneously held names.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    /// Names currently held (advisory under concurrency).
    pub fn held(&self) -> usize {
        self.backend.held()
    }

    /// The backing algorithm's label (e.g. `"rebatching"`).
    pub fn algorithm(&self) -> &'static str {
        self.backend.algorithm()
    }

    /// Whether dropping a [`NameGuard`] actually recycles the name on
    /// this backend.
    pub fn supports_release(&self) -> bool {
        self.backend.supports_release()
    }

    /// Workers created so far — equals the peak number of concurrent
    /// acquires observed (the pool never shrinks).
    pub fn worker_count(&self) -> usize {
        self.streams.load(Ordering::Relaxed) as usize
    }

    /// The shared backend.
    pub fn backend(&self) -> &Arc<dyn ServiceBackend> {
        &self.backend
    }

    fn checkout(&self) -> Worker {
        if let Some(worker) = self.pool.lock().expect("service pool poisoned").pop() {
            return worker;
        }
        let stream = self.streams.fetch_add(1, Ordering::Relaxed);
        Worker {
            session: self.backend.open_session(),
            rng: FastRng::seed_from_u64(self.seed_policy.stream_seed(stream)),
        }
    }

    fn checkin(&self, worker: Worker) {
        self.pool.lock().expect("service pool poisoned").push(worker);
    }
}

impl fmt::Debug for NameService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameService")
            .field("algorithm", &self.algorithm())
            .field("capacity", &self.capacity())
            .field("namespace_size", &self.namespace_size())
            .field("held", &self.held())
            .field("workers", &self.worker_count())
            .field("seed_policy", &self.seed_policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TasBackend;

    #[test]
    fn acquire_release_cycle_recycles_names() {
        let service = NameService::builder(Algorithm::Rebatching, 4)
            .seed_policy(SeedPolicy::Fixed(7))
            .build()
            .expect("build");
        // Far more acquisitions than the namespace holds: only recycling
        // makes this terminate successfully.
        for _ in 0..100 {
            let guard = service.acquire().expect("within capacity");
            assert!(guard.value() < service.namespace_size());
        }
        assert_eq!(service.held(), 0);
        // Single-threaded use needs exactly one pooled worker.
        assert_eq!(service.worker_count(), 1);
    }

    #[test]
    fn concurrent_holders_are_distinct() {
        let service = NameService::builder(Algorithm::FastAdaptive, 16)
            .build()
            .expect("build");
        let guards: Vec<_> = (0..16).map(|_| service.acquire().expect("name")).collect();
        let mut values: Vec<usize> = guards.iter().map(|g| g.value()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 16, "duplicate names among live guards");
        assert_eq!(service.held(), 16);
        drop(guards);
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn fixed_seed_policy_reproduces_sequences() {
        let sequence = |seed: u64| -> Vec<usize> {
            let service = NameService::builder(Algorithm::Adaptive, 32)
                .seed_policy(SeedPolicy::Fixed(seed))
                .build()
                .expect("build");
            (0..20)
                .map(|_| {
                    let guard = service.acquire().expect("name");
                    guard.value()
                })
                .collect()
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43), "seeds should matter");
    }

    #[test]
    fn guard_accessors_and_detach() {
        let service = NameService::builder(Algorithm::LinearScan, 4)
            .build()
            .expect("build");
        let guard = service.acquire().expect("name");
        assert_eq!(guard.name().value(), guard.value());
        assert_eq!(guard.service().algorithm(), "linear-scan");
        assert_eq!(format!("{guard}"), format!("{}", guard.name()));
        let name = guard.into_name();
        assert_eq!(service.held(), 1, "detached name stays held");
        service.release_name(name).expect("manual release");
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn tournament_backend_acquires_but_does_not_recycle() {
        let service = NameService::builder(Algorithm::Rebatching, 4)
            .tas_backend(TasBackend::Tournament)
            .build()
            .expect("build");
        assert!(!service.supports_release());
        let guard = service.acquire().expect("name");
        let value = guard.value();
        assert!(value < service.namespace_size());
        assert!(matches!(
            guard.release(),
            Err(RenamingError::ReleaseUnsupported { .. })
        ));
        // Dropping (above, via release) did not recycle: the slot stays
        // taken, and further acquires return other names.
        assert_eq!(service.held(), 1);
        let next = service.acquire().expect("name");
        assert_ne!(next.value(), value);
        let _ = next.into_name(); // leak deliberately; backend is one-shot
    }
}
