//! Minimal executors for driving the async facade without a runtime.
//!
//! The workspace vendors no async runtime (and the facade needs none:
//! [`AcquireFuture`](crate::AcquireFuture) is hand-rolled over std's
//! `Waker`/`Poll` machinery), so anything that holds an
//! [`AsyncNameService`](crate::AsyncNameService) — examples, tests,
//! experiment 18, and the `renaming-net` server's connection handlers —
//! needs a way to drive futures to completion. This module provides the
//! two smallest correct shapes:
//!
//! * [`block_on`] — park the calling thread until one future resolves:
//!   the "one request at a time" connection-handler loop;
//! * [`drive_all`] — round-robin a batch of futures on the calling
//!   thread until all resolve, interleaving their polls: the pipelined
//!   batch shape (a handler draining several in-flight acquires feeds
//!   them to the combiner *together*, which is exactly what the
//!   flat-combining front-end wants).
//!
//! Both are correct general-purpose executors for any `Future`, but
//! deliberately minimal: no spawning, no timers, no IO. Callers with a
//! real runtime should drive the facade from that instead; these exist
//! so that *not having one* is never a blocker.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// A waker that unparks a thread, with a notification flag so wakes
/// delivered between polls are never lost (the park/unpark analogue of
/// the slot protocol's own engaged flag).
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl ThreadWaker {
    fn current() -> Arc<Self> {
        Arc::new(Self {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        })
    }

    /// Parks until a notification arrives, consuming it. Tolerates
    /// spurious unparks (re-checks the flag) and notifications that
    /// arrived before the park (skips it).
    fn wait(&self) {
        while !self.notified.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.notified.swap(true, Ordering::SeqCst) {
            self.thread.unpark();
        }
    }
}

/// Drives `future` to completion on the calling thread, parking between
/// polls.
///
/// # Example
///
/// ```
/// use renaming_service::{AcquireMode, Algorithm, AsyncNameService, NameService, exec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = AsyncNameService::new(
///     NameService::builder(Algorithm::Rebatching, 8)
///         .acquire_mode(AcquireMode::Combining)
///         .build()?,
/// );
/// let guard = exec::block_on(service.acquire())?;
/// assert!(guard.value() < service.namespace_size());
/// # Ok(())
/// # }
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let state = ThreadWaker::current();
    let waker = Waker::from(Arc::clone(&state));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(output) => return output,
            Poll::Pending => state.wait(),
        }
    }
}

/// Drives a batch of futures to completion on the calling thread,
/// round-robin, returning their outputs in input order.
///
/// Polls every live future each pass (a shared waker cannot attribute a
/// wake to one future; with batch sizes in the tens, precise routing
/// would be all bookkeeping and no benefit), parking when a full pass
/// leaves all of them pending. This interleaves many in-flight
/// acquires on one thread — the pipelined connection-handler shape the
/// `renaming-net` server runs per batch.
///
/// # Example
///
/// ```
/// use renaming_service::{AcquireMode, Algorithm, AsyncNameService, NameService, exec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = AsyncNameService::new(
///     NameService::builder(Algorithm::Rebatching, 8)
///         .acquire_mode(AcquireMode::Combining)
///         .build()?,
/// );
/// // Drive four in-flight acquires on this one thread; outputs come
/// // back in input order.
/// let guards: Vec<_> = exec::drive_all((0..4).map(|_| service.acquire()))
///     .into_iter()
///     .collect::<Result<_, _>>()?;
/// assert_eq!(service.held(), 4);
/// drop(guards);
/// assert_eq!(service.held(), 0);
/// # Ok(())
/// # }
/// ```
pub fn drive_all<F: Future>(futures: impl IntoIterator<Item = F>) -> Vec<F::Output> {
    // One entry per future: the pinned future while live, its output
    // once resolved.
    type Slot<F> = (Option<Pin<Box<F>>>, Option<<F as Future>::Output>);
    let mut slots: Vec<Slot<F>> = futures
        .into_iter()
        .map(|future| (Some(Box::pin(future)), None))
        .collect();
    let state = ThreadWaker::current();
    let waker = Waker::from(Arc::clone(&state));
    let mut cx = Context::from_waker(&waker);
    loop {
        let mut live = 0usize;
        for (future, output) in &mut slots {
            let Some(pinned) = future else { continue };
            match pinned.as_mut().poll(&mut cx) {
                Poll::Ready(value) => {
                    *output = Some(value);
                    *future = None;
                }
                Poll::Pending => live += 1,
            }
        }
        if live == 0 {
            break;
        }
        state.wait();
    }
    slots
        .into_iter()
        .map(|(_, output)| output.expect("every future resolved"))
        .collect()
}

/// A no-op waker that only counts wakes — for tests that poll a future
/// by hand.
#[doc(hidden)]
pub fn test_waker() -> Waker {
    struct CountingWaker(AtomicUsize);
    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    Waker::from(Arc::new(CountingWaker(AtomicUsize::new(0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A future that stays pending `yields` times, waking itself each
    /// time, then resolves — exercises the park/notify loop without any
    /// service machinery.
    struct YieldThen {
        yields: usize,
        value: usize,
    }

    impl Future for YieldThen {
        type Output = usize;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
            if self.yields == 0 {
                return Poll::Ready(self.value);
            }
            self.yields -= 1;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }

    #[test]
    fn block_on_resolves_a_yielding_future() {
        assert_eq!(block_on(YieldThen { yields: 5, value: 7 }), 7);
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_survives_cross_thread_wakes() {
        // The waker crosses to another thread; the blocked thread must
        // wake and complete (no lost notification, no deadlock).
        struct CrossThread {
            spawned: bool,
            done: Arc<AtomicBool>,
        }
        impl Future for CrossThread {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.done.load(Ordering::SeqCst) {
                    return Poll::Ready(());
                }
                if !self.spawned {
                    self.spawned = true;
                    let waker = cx.waker().clone();
                    let done = Arc::clone(&self.done);
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        done.store(true, Ordering::SeqCst);
                        waker.wake();
                    });
                }
                Poll::Pending
            }
        }
        block_on(CrossThread {
            spawned: false,
            done: Arc::new(AtomicBool::new(false)),
        });
    }

    #[test]
    fn drive_all_interleaves_and_preserves_order() {
        let outputs = drive_all((0..10).map(|i| YieldThen { yields: i, value: i }));
        assert_eq!(outputs, (0..10).collect::<Vec<_>>());
        assert!(drive_all(std::iter::empty::<YieldThen>()).is_empty());
    }
}
