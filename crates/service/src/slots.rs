//! Request-slot state for the combining front-end: the published-request
//! state machine, the padded slot table, and the per-thread slot leases.
//!
//! A slot cycles through
//!
//! ```text
//! EMPTY ──publish──▶ PENDING ──take_for_service──▶ SERVING ──fill──▶ DONE | FAILED ──finish──▶ EMPTY
//!                       │
//!                       └──withdraw (cancelled async request)──▶ EMPTY
//! ```
//!
//! Ownership of each edge is strict: only the slot's owner (the thread
//! or task that claimed it) publishes, withdraws, or finishes; only the
//! combiner takes a slot for service and fills it. `PENDING → SERVING`
//! and `PENDING → EMPTY` are both CASes on the same word, so a combiner
//! adopting a request and a cancelled future withdrawing it can never
//! both succeed — the edge that loses sees the other's transition and
//! defers (the combiner skips the slot; the canceller waits for the
//! verdict and recycles an abandoned win).
//!
//! Every transition out of `PENDING`/`SERVING` pairs with the slot's
//! [`WaitCell`] to notify whoever is sleeping on the result — see
//! [`crate::wait`] for the handshake.

use std::cell::RefCell;
use std::sync::Arc;

use crate::sync_shim::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use crate::wait::{WaitCell, WaiterKind};

/// No request published; the slot may be claimed/leased but is idle.
const EMPTY: u32 = 0;
/// A request is published and waiting for a combiner to adopt it.
const PENDING: u32 = 1;
/// A combiner has adopted the request into its current batch and will
/// fill the slot before it releases the combiner lock.
const SERVING: u32 = 2;
/// Filled with a won name (in `result`); the owner consumes it.
const DONE: u32 = 3;
/// Filled with a failure (namespace exhausted); the owner consumes it.
const FAILED: u32 = 4;

/// Per-thread cap on remembered `(table id, slot lease)` pairs —
/// the same bounded-TLS discipline as the pool's shard hints.
const LEASES_PER_THREAD: usize = 64;

/// What the owner of a published request sees when it checks its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotPoll {
    /// Still `PENDING` or `SERVING`: no verdict yet.
    Waiting,
    /// Served: the request won this name value.
    Done(usize),
    /// Served: the namespace was exhausted.
    Failed,
}

/// One published acquire request. Padded to own its cache lines
/// outright, so a waiter spinning on its own slot never false-shares
/// with a neighbor's publication.
#[repr(align(128))]
#[derive(Debug)]
pub(crate) struct RequestSlot {
    /// Claimed by a thread lease ([`SlotLease`]) or directly by an async
    /// future: only the claimant may publish requests here.
    claimed: AtomicBool,
    state: AtomicU32,
    /// The acquired name's value; meaningful only in state `DONE`.
    result: AtomicUsize,
    /// The wait/notify half: who (if anyone) sleeps on this slot.
    pub(crate) wait: WaitCell,
}

impl RequestSlot {
    fn new() -> Self {
        Self {
            claimed: AtomicBool::new(false),
            state: AtomicU32::new(EMPTY),
            result: AtomicUsize::new(0),
            wait: WaitCell::new(),
        }
    }

    /// Publishes a request: `EMPTY → PENDING`. Owner only; the caller
    /// must bump the combiner's queued hint *before* this store (program
    /// order on the SeqCst pair is what lets a combiner that sees
    /// `PENDING` also see the count).
    pub(crate) fn publish(&self) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), EMPTY);
        self.state.store(PENDING, Ordering::SeqCst);
    }

    /// The owner's view of the slot.
    pub(crate) fn poll(&self) -> SlotPoll {
        match self.state.load(Ordering::SeqCst) {
            DONE => SlotPoll::Done(self.result.load(Ordering::Relaxed)),
            FAILED => SlotPoll::Failed,
            _ => SlotPoll::Waiting,
        }
    }

    /// Whether the request is still in flight (`PENDING` or `SERVING`) —
    /// the sync waiter's post-engage park condition.
    pub(crate) fn in_flight(&self) -> bool {
        matches!(self.state.load(Ordering::SeqCst), PENDING | SERVING)
    }

    /// Combiner edge: adopts a pending request into the current batch
    /// (`PENDING → SERVING`). Returns `false` if the slot holds no
    /// pending request — including the case where a cancelled future
    /// withdrew it between our load and CAS.
    pub(crate) fn take_for_service(&self) -> bool {
        self.state.load(Ordering::SeqCst) == PENDING
            && self
                .state
                .compare_exchange(PENDING, SERVING, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
    }

    /// Owner edge (cancellation): withdraws a request no combiner has
    /// adopted yet (`PENDING → EMPTY`). Returns `false` if a combiner
    /// won the race — the verdict is then coming and must be consumed.
    pub(crate) fn withdraw(&self) -> bool {
        self.state
            .compare_exchange(PENDING, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Combiner edge: fills an adopted slot with its verdict
    /// (`SERVING → DONE | FAILED`) and collects the waiter to notify.
    /// The SeqCst state store before the engaged-flag load is the
    /// combiner's half of the Dekker handshake (see [`crate::wait`]).
    pub(crate) fn fill(&self, outcome: Option<usize>) -> Option<WaiterKind> {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), SERVING);
        let state = match outcome {
            Some(value) => {
                self.result.store(value, Ordering::Relaxed);
                DONE
            }
            None => FAILED,
        };
        self.state.store(state, Ordering::SeqCst);
        self.wait.take_notification()
    }

    /// Owner edge: consumes a verdict (`DONE | FAILED → EMPTY`), making
    /// the slot publishable again.
    pub(crate) fn finish(&self) {
        self.state.store(EMPTY, Ordering::Relaxed);
    }
}

/// Identity source for slot tables (monotonic, never reused), keying
/// each thread's slot leases per combiner.
///
/// Deliberately on `std` even under `--cfg renaming_model`: model
/// atomics are not const-constructible, and a process-global id counter
/// is not part of any modeled protocol (see [`crate::sync_shim`]).
fn next_table_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The combining front-end's array of request slots, shared between the
/// combiner core, thread leases, and in-flight async futures.
#[derive(Debug)]
pub(crate) struct SlotTable {
    slots: Box<[RequestSlot]>,
    /// This table's key into the per-thread lease table.
    id: u64,
}

impl SlotTable {
    /// A table with `slots` request slots (clamped to `2..=256`, rounded
    /// up to a power of two).
    pub(crate) fn new(slots: usize) -> Arc<Self> {
        let slots = slots.clamp(2, 256).next_power_of_two();
        Arc::new(Self {
            slots: (0..slots).map(|_| RequestSlot::new()).collect(),
            id: next_table_id(),
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn slot(&self, index: usize) -> &RequestSlot {
        &self.slots[index]
    }

    /// Claims an unclaimed slot outright (no lease, no waiter
    /// registration) — the async path, where a future owns the claim for
    /// exactly one request and releases it on completion or drop.
    /// `None` when every slot is taken.
    pub(crate) fn claim(&self) -> Option<usize> {
        for (index, slot) in self.slots.iter().enumerate() {
            // Acquire on both the hint load and the CAS: either read may
            // be the one that observes the releasing thread's clear, and
            // the claimant's subsequent slot accesses must be ordered
            // after it (free on x86; keeps the model's race detector
            // edge-complete).
            if slot.claimed.load(Ordering::Acquire) {
                continue;
            }
            if slot
                .claimed
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Acquire)
                .is_ok()
            {
                return Some(index);
            }
        }
        None
    }

    /// Releases a claim taken by [`claim`](Self::claim) (or held by a
    /// dropped lease): clears the waiter registration, then reopens the
    /// slot. The Release store pairs with the Acquire CAS in `claim`,
    /// ordering the clear before the slot's next claimant.
    pub(crate) fn release(&self, index: usize) {
        let slot = &self.slots[index];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), EMPTY);
        slot.wait.clear();
        slot.claimed.store(false, Ordering::Release);
    }

    /// The calling thread's leased slot index in this table, claiming
    /// one (and registering the thread's park handle as its waiter) on
    /// first touch. `None` when every slot is taken by another live
    /// thread or an in-flight async future — the caller then falls back
    /// to the direct path.
    pub(crate) fn leased_index(self: &Arc<Self>) -> Option<usize> {
        LEASES.with(|leases| {
            let mut leases = leases.borrow_mut();
            if let Some((_, lease)) = leases.iter().find(|(id, _)| *id == self.id) {
                return Some(lease.index);
            }
            let index = self.claim()?;
            self.slots[index].wait.install_thread();
            if leases.len() >= LEASES_PER_THREAD {
                leases.remove(0); // evict (and thereby release) the oldest
            }
            leases.push((self.id, SlotLease { table: Arc::clone(self), index }));
            Some(index)
        })
    }

    /// How many slots are currently unclaimed (tests).
    #[cfg(test)]
    pub(crate) fn unclaimed(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| !slot.claimed.load(Ordering::Relaxed))
            .count()
    }
}

/// A thread's exclusive claim on one request slot of one slot table.
/// Dropping the lease (thread exit, or TLS eviction) releases the slot
/// for other threads; the `Arc` keeps the slot array alive even if the
/// service is gone.
#[derive(Debug)]
struct SlotLease {
    table: Arc<SlotTable>,
    index: usize,
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        self.table.release(self.index);
    }
}

thread_local! {
    static LEASES: RefCell<Vec<(u64, SlotLease)>> = const { RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_clamp_and_round() {
        assert_eq!(SlotTable::new(0).len(), 2);
        assert_eq!(SlotTable::new(3).len(), 4);
        assert_eq!(SlotTable::new(usize::MAX).len(), 256);
    }

    #[test]
    fn request_slots_own_their_cache_lines() {
        assert!(std::mem::align_of::<RequestSlot>() >= 128);
        assert!(std::mem::size_of::<RequestSlot>().is_multiple_of(128));
    }

    #[test]
    fn state_machine_walks_the_published_request_cycle() {
        let table = SlotTable::new(2);
        let index = table.claim().expect("fresh table has slots");
        let slot = table.slot(index);
        assert_eq!(slot.poll(), SlotPoll::Waiting);
        assert!(!slot.in_flight(), "EMPTY is not in flight");
        slot.publish();
        assert!(slot.in_flight());
        assert!(slot.take_for_service(), "combiner adopts a pending slot");
        assert!(!slot.take_for_service(), "adoption is exclusive");
        assert!(!slot.withdraw(), "withdraw loses against an adoption");
        assert!(slot.in_flight(), "SERVING is still in flight");
        assert!(slot.fill(Some(7)).is_none(), "no waiter engaged");
        assert_eq!(slot.poll(), SlotPoll::Done(7));
        slot.finish();
        assert_eq!(slot.poll(), SlotPoll::Waiting);
        table.release(index);
    }

    #[test]
    fn withdraw_beats_a_combiner_that_has_not_adopted() {
        let table = SlotTable::new(2);
        let index = table.claim().expect("claim");
        let slot = table.slot(index);
        slot.publish();
        assert!(slot.withdraw(), "unadopted requests withdraw cleanly");
        assert!(!slot.take_for_service(), "nothing left to adopt");
        table.release(index);
    }

    #[test]
    fn failed_fill_reports_exhaustion() {
        let table = SlotTable::new(2);
        let index = table.claim().expect("claim");
        let slot = table.slot(index);
        slot.publish();
        assert!(slot.take_for_service());
        assert!(slot.fill(None).is_none());
        assert_eq!(slot.poll(), SlotPoll::Failed);
        slot.finish();
        table.release(index);
    }

    #[test]
    fn leases_are_sticky_per_thread_and_released_on_exit() {
        let table = SlotTable::new(4);
        let a = table.leased_index().expect("claim");
        assert_eq!(table.leased_index(), Some(a), "lease is sticky");
        let clone = Arc::clone(&table);
        std::thread::spawn(move || {
            let b = clone.leased_index().expect("claim");
            assert_ne!(a, b, "two live threads never share a slot");
        })
        .join()
        .expect("join");
        // The spawned thread exited: its lease dropped, its slot is free
        // again (claimed flag cleared, waiter handle gone).
        assert_eq!(table.unclaimed(), 3, "only the live thread's slot stays claimed");
    }

    #[test]
    fn direct_claims_and_leases_share_the_table() {
        let table = SlotTable::new(2);
        let leased = table.leased_index().expect("lease");
        let claimed = table.claim().expect("one slot left");
        assert_ne!(leased, claimed);
        assert!(table.claim().is_none(), "table exhausted");
        assert_eq!(
            table.leased_index(),
            Some(leased),
            "the sticky lease survives a full table"
        );
        table.release(claimed);
        assert_eq!(table.unclaimed(), 1);
    }
}
