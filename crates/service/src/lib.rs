//! A unified, thread-safe **acquire/release** front-end over every
//! renaming algorithm in the workspace.
//!
//! The paper's objects are long-lived loose-renaming primitives, but
//! their raw APIs are simulation-shaped: per-algorithm `get_name`
//! methods, hand-managed per-thread sessions and RNGs. This crate turns
//! them into one ergonomic service, the way practical renaming
//! front-ends (cf. the LevelArray line of work) expose the primitive:
//!
//! * [`Namespace`] — the interchangeable-backend trait (`acquire`,
//!   `release`, `namespace_size`, `capacity`), implemented by
//!   `Rebatching`, `AdaptiveRebatching`, `FastAdaptiveRebatching` and
//!   all four baselines, over hardware atomics **and** the
//!   register-based tournament substrate;
//! * [`NameGuard`] — RAII ownership of an acquired name: drop it and
//!   the name is recycled;
//! * [`NameService`] — the thread-safe front-end, built via
//!   [`NameServiceBuilder`]: internal per-worker session pooling and
//!   [`renaming_core::FastRng`] streams, so callers just write
//!   `let guard = service.acquire()?` from any thread;
//! * [`AsyncNameService`] — the same service behind `acquire().await`:
//!   a hand-rolled [`Future`](std::future::Future) (std
//!   `Waker`/`Poll` only, no external runtime) that publishes into the
//!   combining front-end's request slots and suspends instead of
//!   parking, with [`AsyncNameGuard`] for mode-independent RAII release;
//! * [`exec`] — minimal, documented executors ([`exec::block_on`],
//!   [`exec::drive_all`]) for driving the async facade without any
//!   runtime — what connection handlers (e.g. the `renaming-net`
//!   server) and tests use;
//! * [`ServiceMetrics`] — opt-in latency histograms
//!   ([`NameServiceBuilder::metrics`]): fixed-bucket log₂
//!   [`LatencyHistogram`]s with relaxed-counter increments, zero cost
//!   when disabled, exported over the wire by `renaming-net`'s `Stats`
//!   endpoint.
//!
//! # Quickstart
//!
//! ```
//! use renaming_service::{Algorithm, NameService, SeedPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = NameService::builder(Algorithm::Rebatching, 64)
//!     .seed_policy(SeedPolicy::Fixed(42))
//!     .build()?;
//!
//! std::thread::scope(|scope| {
//!     for _ in 0..8 {
//!         scope.spawn(|| {
//!             let guard = service.acquire().expect("within capacity");
//!             // `guard.value()` is a dense id unique among live guards.
//!             assert!(guard.value() < service.namespace_size());
//!             // dropped here -> name recycled
//!         });
//!     }
//! });
//! assert_eq!(service.held(), 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![deny(clippy::undocumented_unsafe_blocks)]

mod async_api;
mod builder;
mod combiner;
pub mod exec;
mod guard;
mod metrics;
mod namespace;
mod oracle;
mod pool;
mod service;
mod slots;
mod sync_shim;
mod wait;

#[cfg(all(test, renaming_model))]
mod model_tests;

pub use async_api::{AcquireFuture, AsyncNameGuard, AsyncNameService};
pub use builder::{AcquireMode, Algorithm, NameServiceBuilder, TasBackend};
pub use guard::NameGuard;
pub use metrics::{
    HistogramSnapshot, LatencyHistogram, MetricsSnapshot, ServiceMetrics, HISTOGRAM_BUCKETS,
};
pub use namespace::{CountingSlot, Namespace, PooledSession, ServiceBackend, TournamentSlot};
pub use oracle::OracleVerdict;
pub use pool::PoolKind;
pub use service::{NameService, SeedPolicy};

// Re-export the vocabulary types a service caller needs, so depending on
// `renaming-core` directly is optional.
pub use renaming_core::{Epsilon, Name, RenamingError};

// Re-export the oracle's own vocabulary so callers consuming a verdict
// (tests, the wire server's `Stats`) need not depend on
// `renaming-oracle` directly.
pub use renaming_oracle::{
    History, HistoryReport, Oracle, OracleSummary, SnapshotReport, Violation, WorkerCounts,
};
