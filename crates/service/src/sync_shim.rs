//! The concurrency-primitive switchboard for the service's hot modules.
//!
//! `slots.rs`, `wait.rs`, `combiner.rs` and `pool.rs` import their
//! atomics, mutexes, thread handles and spin hints from here instead of
//! `std`. In a normal build (no `renaming_model` cfg) every path below
//! is a plain `pub(crate) use` of the `std` item — zero overhead, same
//! types, golden tests and benches untouched. Under
//! `RUSTFLAGS="--cfg renaming_model"` the same paths resolve to the
//! [`renaming_model`] shim, whose primitives are scheduling points of
//! the interleaving checker and feed its vector-clock ordering
//! detector; `crates/service/src/model_tests.rs` then model-checks the
//! *real* slot, wait-cell, combiner and pool code.
//!
//! Two deliberate exceptions stay on `std` even under the cfg:
//!
//! * const-initialized function-local statics (the table/pool id
//!   counters) — model atomics carry detector state and cannot be
//!   const-constructed, and process-global counters are not part of
//!   any modeled protocol;
//! * `std::thread::available_parallelism` (capacity heuristics, not
//!   synchronization).
//!
//! Model primitives created *outside* a checker execution (or cached in
//! thread-locals across executions) degrade to plain uninstrumented
//! behavior, so the ordinary test suite still passes when the cfg is
//! set globally.

#[cfg(not(renaming_model))]
pub(crate) use std::{hint, thread};

/// Mirror of the `std::sync` paths the hot modules use.
#[cfg(not(renaming_model))]
pub(crate) mod sync {
    pub(crate) use std::sync::Mutex;

    /// Mirror of `std::sync::atomic`.
    pub(crate) mod atomic {
        pub(crate) use std::sync::atomic::{
            AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(renaming_model)]
pub(crate) use renaming_model::{hint, thread};

/// Model-checked replacements for the `std::sync` paths.
#[cfg(renaming_model)]
pub(crate) mod sync {
    pub(crate) use renaming_model::sync::Mutex;

    /// Model-checked replacements for `std::sync::atomic`.
    pub(crate) mod atomic {
        pub(crate) use renaming_model::sync::atomic::{
            AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}
