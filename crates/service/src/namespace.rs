//! The [`Namespace`] abstraction: one acquire/release surface over every
//! renaming backend in the workspace.

use rand::RngCore;

use renaming_baselines::{
    DoublingRenaming, LinearScanRenaming, SingleBatchRenaming, UniformRenaming,
};
use renaming_core::driver::NameSession;
use renaming_core::{
    AbandonedNames, AdaptiveRebatching, BatchAcquire, FastAdaptiveRebatching, Name, Rebatching,
    RenamingError,
};
use renaming_tas::rwtas::TournamentTas;
use renaming_tas::{AtomicTas, CountingTas, ResettableTas, Tas, TicketTas};

/// The TAS slot type of the register-based tournament backend: a
/// [`TournamentTas`] per name, adapted to the anonymous [`Tas`] interface
/// by ticketing.
///
/// Long-lived: the slot implements [`ResettableTas`] through the
/// tournament's epoch stamps — a release is a single O(1) epoch bump
/// that reopens the tree and reissues the ticket window, so
/// tournament-backed namespaces recycle names exactly like the atomic
/// ones.
///
/// # Example
///
/// The slot behaves like any resettable TAS — first caller per epoch
/// wins:
///
/// ```
/// use renaming_service::TournamentSlot;
/// use renaming_tas::rwtas::TournamentTas;
/// use renaming_tas::{ResettableTas, Tas, TasResult, TicketTas};
///
/// let slot: TournamentSlot = TicketTas::new(TournamentTas::new(4));
/// assert_eq!(slot.test_and_set(), TasResult::Won);
/// assert_eq!(slot.test_and_set(), TasResult::Lost);
/// slot.reset(); // O(1) epoch bump: the slot is a name being released
/// assert_eq!(slot.test_and_set(), TasResult::Won);
/// ```
pub type TournamentSlot = TicketTas<TournamentTas>;

/// An instrumented atomic slot: hardware TAS behind an operation counter,
/// for measuring real steps-per-acquire through the service (build such
/// backends with the objects' `from_parts` constructors and
/// [`crate::NameService::with_backend`]).
///
/// # Example
///
/// Count the TAS operations a service's acquires actually perform:
///
/// ```
/// use std::sync::Arc;
/// use renaming_service::{Epsilon, NameService, SeedPolicy};
/// use renaming_core::{BatchLayout, ProbeSchedule, Rebatching};
/// use renaming_tas::{AtomicTas, CountingTas, TasArray};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schedule = ProbeSchedule::paper(Epsilon::one(), 3)?;
/// let layout = BatchLayout::shared(16, schedule)?;
/// let slots = Arc::new(TasArray::from_slots(
///     (0..layout.namespace_size())
///         .map(|_| CountingTas::new(AtomicTas::new()))
///         .collect(),
/// ));
/// let backend = Arc::new(Rebatching::from_parts(layout, Arc::clone(&slots))?);
/// let service = NameService::with_backend(backend, SeedPolicy::Fixed(1));
///
/// let _guard = service.acquire()?;
/// let ops: u64 = (0..slots.len()).map(|i| slots.slot(i).tas_ops()).sum();
/// assert!(ops >= 1, "an acquire performs at least one TAS");
/// # Ok(())
/// # }
/// ```
pub type CountingSlot = CountingTas<AtomicTas>;

/// A long-lived loose-renaming object: a shared namespace `0..m` from
/// which threads acquire unique names and (on recyclable backends)
/// release them again.
///
/// This is the interchangeable-backend trait of the `renaming-service`
/// crate: the paper's three algorithms and all four baselines implement
/// it over hardware atomics *and* over the register-based tournament
/// substrate (long-lived there too, via the tournament's epoch-stamped
/// O(1) reset). Object-safe, so heterogeneous backends can sit behind
/// `Arc<dyn Namespace>`.
///
/// # Contract
///
/// * `acquire` returns a name no other thread currently holds; at most
///   [`capacity`](Self::capacity) names may be held simultaneously.
/// * `release` on a [`supports_release`](Self::supports_release) backend
///   makes the name available to future acquires. Releasing a name that
///   is not held is a caller bug and may panic.
/// * `namespace_size` bounds every returned name: `name < m`.
///
/// # Example
///
/// Drive any backend through the trait object:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use renaming_service::{Epsilon, Namespace};
/// use renaming_core::Rebatching;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let object = Rebatching::with_defaults(16, Epsilon::one())?;
/// let ns: &dyn Namespace = &object;
/// let mut rng = StdRng::seed_from_u64(1);
/// let name = ns.acquire(&mut rng)?;
/// assert!(name.value() < ns.namespace_size());
/// ns.release(name)?;
/// assert_eq!(ns.held(), 0);
/// # Ok(())
/// # }
/// ```
pub trait Namespace: Send + Sync {
    /// Acquires a unique name, drawing coins from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] when more names are
    /// requested than the backend can hold.
    fn acquire(&self, rng: &mut dyn RngCore) -> Result<Name, RenamingError>;

    /// Releases a held name, reopening its slot.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::ReleaseUnsupported`] on a one-shot
    /// backend. Every built-in backend — atomic, counting and the
    /// epoch-resettable register tournament — supports release; the
    /// error remains for custom `Namespace` implementations over
    /// non-resettable substrates.
    ///
    /// # Panics
    ///
    /// May panic if `name` is outside the namespace or not currently
    /// held — both are caller bugs.
    fn release(&self, name: Name) -> Result<(), RenamingError>;

    /// The namespace size `m`: every acquired name is in `0..m`.
    fn namespace_size(&self) -> usize;

    /// The maximum number of simultaneously held names the backend is
    /// provisioned for (the paper's `n`).
    fn capacity(&self) -> usize;

    /// Names currently held (an O(1) relaxed counter; advisory under
    /// concurrency).
    fn held(&self) -> usize;

    /// A short label of the backing algorithm (e.g. `"rebatching"`).
    fn algorithm(&self) -> &'static str;

    /// Whether [`release`](Self::release) recycles names on this backend.
    fn supports_release(&self) -> bool;
}

/// A pooled per-worker acquisition handle: one reusable machine bound to
/// the backend's shared slots.
///
/// [`crate::NameService`] keeps a pool of these so steady-state acquires
/// construct no machine (and touch no `Arc` refcounts). Implemented by
/// [`NameSession`] for every machine/backend combination.
///
/// # Example
///
/// Sessions come from [`ServiceBackend::open_session`]; each drives its
/// own reusable machine against the backend's shared slots:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use renaming_service::{Epsilon, PooledSession, ServiceBackend};
/// use renaming_core::Rebatching;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let object = Rebatching::with_defaults(8, Epsilon::one())?;
/// let mut session: Box<dyn PooledSession> = object.open_session();
/// let mut rng = StdRng::seed_from_u64(9);
/// let name = session.acquire(&mut rng)?;
/// assert!(name.value() < 16);
/// # Ok(())
/// # }
/// ```
pub trait PooledSession: Send {
    /// Acquires a unique name, reusing this session's machine.
    ///
    /// # Errors
    ///
    /// As for the owning backend's [`Namespace::acquire`].
    fn acquire(&mut self, rng: &mut dyn RngCore) -> Result<Name, RenamingError>;

    /// Acquires `count` unique names in one batched sweep, appending
    /// them to `out` — the combining front-end's entry point (see
    /// [`renaming_core::BatchAcquire`]). The machine is rearmed, not
    /// reset, between wins, so batch-structured machines amortize their
    /// probe state across the whole batch. `acquire_batch(1, ..)` is
    /// exactly [`acquire`](Self::acquire).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if the namespace
    /// cannot satisfy the whole batch; names already won stay acquired
    /// and are left in `out`.
    fn acquire_batch(
        &mut self,
        count: usize,
        rng: &mut dyn RngCore,
        out: &mut Vec<Name>,
    ) -> Result<(), RenamingError>;
}

impl<M, T> PooledSession for NameSession<M, T>
where
    M: BatchAcquire + Send,
    T: Tas,
{
    fn acquire(&mut self, mut rng: &mut dyn RngCore) -> Result<Name, RenamingError> {
        self.get_name(&mut rng)
    }

    fn acquire_batch(
        &mut self,
        count: usize,
        mut rng: &mut dyn RngCore,
        out: &mut Vec<Name>,
    ) -> Result<(), RenamingError> {
        NameSession::acquire_batch(self, count, &mut rng, out)
    }
}

/// A pooled session over a resettable substrate: acquires recycle the
/// surplus TAS wins the adaptive machines supersede (see
/// [`renaming_core::AbandonedNames`]), so long-lived churn leaks no
/// slots.
struct RecyclingSession<M, T>(NameSession<M, T>)
where
    M: BatchAcquire + AbandonedNames + Send,
    T: ResettableTas;

impl<M, T> PooledSession for RecyclingSession<M, T>
where
    M: BatchAcquire + AbandonedNames + Send,
    T: ResettableTas,
{
    fn acquire(&mut self, mut rng: &mut dyn RngCore) -> Result<Name, RenamingError> {
        self.0.get_name_recycling(&mut rng)
    }

    fn acquire_batch(
        &mut self,
        count: usize,
        mut rng: &mut dyn RngCore,
        out: &mut Vec<Name>,
    ) -> Result<(), RenamingError> {
        self.0.acquire_batch_recycling(count, &mut rng, out)
    }
}

/// A [`Namespace`] that can open [`PooledSession`]s — everything
/// [`crate::NameService`] needs from a backend.
///
/// # Example
///
/// A session acquires against the same shared slots as the object it
/// was opened from, reusing one machine across calls:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use renaming_service::{Epsilon, Namespace, ServiceBackend};
/// use renaming_core::Rebatching;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let object = Rebatching::with_defaults(8, Epsilon::one())?;
/// let mut session = object.open_session();
/// let mut rng = StdRng::seed_from_u64(3);
/// let a = session.acquire(&mut rng)?;
/// let b = session.acquire(&mut rng)?;
/// assert_ne!(a, b);
/// assert_eq!(Namespace::held(&object), 2);
/// # Ok(())
/// # }
/// ```
pub trait ServiceBackend: Namespace {
    /// Opens a fresh session over this backend's shared slots.
    fn open_session(&self) -> Box<dyn PooledSession>;
}

/// Implements `Namespace` + `ServiceBackend` for a concrete object type.
///
/// Every backend is long-lived (`release`): releases go to the object's
/// `release_name`, and acquires run in recycling mode so the adaptive
/// algorithms' superseded search wins return to the namespace. The
/// register-tournament slots joined this path when they gained the
/// epoch-stamped reset ([`TournamentSlot`] implements [`ResettableTas`]);
/// the former `one_shot` arm — `ReleaseUnsupported`, leak-on-drop — is
/// gone.
macro_rules! impl_namespace {
    ($ty:ty, $label:literal, $size:ident, release) => {
        impl ServiceBackend for $ty {
            fn open_session(&self) -> Box<dyn PooledSession> {
                Box::new(RecyclingSession(self.session()))
            }
        }

        impl Namespace for $ty {
            impl_namespace!(@shared $label, $size, get_name_recycling);

            fn release(&self, name: Name) -> Result<(), RenamingError> {
                self.release_name(name);
                Ok(())
            }

            fn supports_release(&self) -> bool {
                true
            }
        }
    };
    (@shared $label:literal, $size:ident, $acquire:ident) => {
        fn acquire(&self, mut rng: &mut dyn RngCore) -> Result<Name, RenamingError> {
            self.$acquire(&mut rng)
        }

        fn namespace_size(&self) -> usize {
            self.$size()
        }

        fn capacity(&self) -> usize {
            self.capacity()
        }

        fn held(&self) -> usize {
            self.slots().set_count()
        }

        fn algorithm(&self) -> &'static str {
            $label
        }
    };
}

impl_namespace!(Rebatching<AtomicTas>, "rebatching", namespace_size, release);
impl_namespace!(AdaptiveRebatching<AtomicTas>, "adaptive-rebatching", total_size, release);
impl_namespace!(FastAdaptiveRebatching<AtomicTas>, "fast-adaptive-rebatching", total_size, release);
impl_namespace!(UniformRenaming<AtomicTas>, "uniform", namespace_size, release);
impl_namespace!(LinearScanRenaming<AtomicTas>, "linear-scan", namespace_size, release);
impl_namespace!(SingleBatchRenaming<AtomicTas>, "single-batch", namespace_size, release);
impl_namespace!(DoublingRenaming<AtomicTas>, "doubling-uniform", namespace_size, release);

impl_namespace!(Rebatching<CountingSlot>, "rebatching", namespace_size, release);
impl_namespace!(AdaptiveRebatching<CountingSlot>, "adaptive-rebatching", total_size, release);
impl_namespace!(FastAdaptiveRebatching<CountingSlot>, "fast-adaptive-rebatching", total_size, release);

impl_namespace!(Rebatching<TournamentSlot>, "rebatching", namespace_size, release);
impl_namespace!(AdaptiveRebatching<TournamentSlot>, "adaptive-rebatching", total_size, release);
impl_namespace!(FastAdaptiveRebatching<TournamentSlot>, "fast-adaptive-rebatching", total_size, release);
impl_namespace!(UniformRenaming<TournamentSlot>, "uniform", namespace_size, release);
impl_namespace!(LinearScanRenaming<TournamentSlot>, "linear-scan", namespace_size, release);
impl_namespace!(SingleBatchRenaming<TournamentSlot>, "single-batch", namespace_size, release);
impl_namespace!(DoublingRenaming<TournamentSlot>, "doubling-uniform", namespace_size, release);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use renaming_core::Epsilon;

    #[test]
    fn trait_objects_acquire_and_release() {
        let object = Rebatching::with_defaults(16, Epsilon::one()).expect("construct");
        let ns: &dyn Namespace = &object;
        let mut rng = StdRng::seed_from_u64(1);
        let name = ns.acquire(&mut rng).expect("name");
        assert!(name.value() < ns.namespace_size());
        assert_eq!(ns.held(), 1);
        assert!(ns.supports_release());
        ns.release(name).expect("release");
        assert_eq!(ns.held(), 0);
        assert_eq!(ns.algorithm(), "rebatching");
        assert_eq!(ns.capacity(), 16);
    }

    #[test]
    fn every_atomic_backend_exposes_the_namespace_contract() {
        let backends: Vec<Box<dyn Namespace>> = vec![
            Box::new(Rebatching::with_defaults(8, Epsilon::one()).expect("rebatching")),
            Box::new(AdaptiveRebatching::with_defaults(8, Epsilon::one()).expect("adaptive")),
            Box::new(FastAdaptiveRebatching::with_defaults(8).expect("fast-adaptive")),
            Box::new(UniformRenaming::new(8)),
            Box::new(LinearScanRenaming::new(8)),
            Box::new(SingleBatchRenaming::new(8)),
            Box::new(DoublingRenaming::new(8)),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for ns in &backends {
            let label = ns.algorithm();
            let a = ns.acquire(&mut rng).unwrap_or_else(|e| panic!("{label}: {e}"));
            let b = ns.acquire(&mut rng).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_ne!(a, b, "{label}");
            assert!(a.value() < ns.namespace_size(), "{label}");
            assert!(b.value() < ns.namespace_size(), "{label}");
            assert_eq!(ns.held(), 2, "{label}");
            ns.release(a).expect(label);
            ns.release(b).expect(label);
            assert_eq!(ns.held(), 0, "{label}");
        }
    }

    #[test]
    fn pooled_sessions_match_backend_acquires() {
        let object = Rebatching::with_defaults(8, Epsilon::one()).expect("construct");
        let twin = Rebatching::with_defaults(8, Epsilon::one()).expect("construct");
        let mut session = ServiceBackend::open_session(&twin);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let direct = Namespace::acquire(&object, &mut rng_a).expect("direct");
            let pooled = session.acquire(&mut rng_b).expect("pooled");
            assert_eq!(direct, pooled);
        }
    }
}
