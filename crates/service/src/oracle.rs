//! The service-level oracle verdict: the history checker's report
//! combined with the service's own quiescent counters.
//!
//! The recording machinery lives in the dependency-free
//! [`renaming_oracle`] crate; this module only adds the pieces that
//! need the service — the worker conservation law and the agreement
//! between the history's live count and the backend's occupancy
//! counter. See [`crate::NameService::oracle_verdict`].

use renaming_oracle::{HistoryReport, WorkerCounts};

/// Everything the oracle can say about a finished run, produced by
/// [`NameService::oracle_verdict`](crate::NameService::oracle_verdict)
/// at quiescence.
///
/// # Example
///
/// ```
/// use renaming_service::{Algorithm, NameService};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = NameService::builder(Algorithm::Rebatching, 8)
///     .oracle(true)
///     .build()?;
/// drop(service.acquire()?);
/// let verdict = service.oracle_verdict().expect("oracle enabled");
/// assert!(verdict.is_clean());
/// assert!(verdict.drained());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OracleVerdict {
    /// The history checker's report: overlap, bounds, capacity,
    /// release matching, snapshot cuts.
    pub history: HistoryReport,
    /// The service's worker counters at verdict time.
    pub workers: WorkerCounts,
    /// The backend's own held-names counter at verdict time.
    pub held: usize,
}

impl OracleVerdict {
    /// The worker conservation law: every worker created is pooled,
    /// retired, or resident.
    pub fn workers_conserved(&self) -> bool {
        self.workers.conserved()
    }

    /// The history's live count agrees with the backend's occupancy
    /// counter — wins the history never saw returned are exactly the
    /// names the backend still counts held.
    pub fn held_matches_history(&self) -> bool {
        self.history.live_at_exit == self.held
    }

    /// Clean across every axis: no history violations, workers
    /// conserved, and history live count agreeing with the backend.
    pub fn is_clean(&self) -> bool {
        self.history.is_clean() && self.workers_conserved() && self.held_matches_history()
    }

    /// Clean *and* fully returned: the namespace drained to zero.
    pub fn drained(&self) -> bool {
        self.is_clean() && self.history.drained() && self.held == 0
    }
}
