//! The wait/notify half of the combining front-end's slot protocol.
//!
//! A published request needs exactly one thing from the combiner: *tell
//! me when my slot is filled*. How the owner sleeps while waiting is an
//! orthogonal concern — an OS thread parks, an async task returns
//! [`Poll::Pending`](std::task::Poll::Pending) and hands the executor a
//! [`Waker`] — so this module factors the two apart:
//!
//! * [`WaiterKind`] is *who to notify*: a thread handle to unpark or a
//!   waker to wake. The combiner's drain loop completes slots and
//!   notifies through this one type regardless of kind.
//! * [`WaitCell`] is *the handshake*: an `engaged` flag plus the waiter
//!   registration, reproducing the SeqCst Dekker publish/park protocol
//!   the sync path has always used (store flag, re-load state on one
//!   side; store state, load flag on the other — at least one side must
//!   observe the other, so a served request can never sleep through its
//!   own notification).
//!
//! The cell deliberately keeps the sync fast path intact: a thread
//! waiter registers its handle once (at slot-lease claim) and only flips
//! the `engaged` flag around an actual park, so publishing a result to a
//! spinning waiter still costs one SeqCst load and no mutex traffic.

use std::task::Waker;

use crate::sync_shim::sync::atomic::{AtomicBool, Ordering};
use crate::sync_shim::sync::Mutex;
use crate::sync_shim::thread::Thread;

/// Who to notify when a request slot is filled: the two ways a waiter
/// can sleep.
pub(crate) enum WaiterKind {
    /// A parked OS thread — today's sync path, notified via `unpark`.
    Thread(Thread),
    /// An async task that returned `Pending` — notified via its
    /// [`Waker`], handing the task back to whatever executor polls it.
    Async(Waker),
}

impl WaiterKind {
    /// Delivers the notification. Called by the combiner *after* it has
    /// released the combiner lock, keeping unpark/wake side effects
    /// (futex syscalls, executor queue pushes) out of the critical
    /// section.
    pub(crate) fn notify(self) {
        match self {
            WaiterKind::Thread(thread) => thread.unpark(),
            WaiterKind::Async(waker) => waker.wake(),
        }
    }
}

impl std::fmt::Debug for WaiterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaiterKind::Thread(thread) => f.debug_tuple("Thread").field(&thread.id()).finish(),
            WaiterKind::Async(_) => f.debug_tuple("Async").finish(),
        }
    }
}

/// One slot's wait/notify state: the `engaged` flag the Dekker handshake
/// runs on, plus the registered waiter to notify.
///
/// The flag and the slot's `state` field (owned by
/// [`slots::RequestSlot`](crate::slots)) form the two-sided SeqCst
/// handshake: a waiter *engages* (stores the flag) then re-checks the
/// slot state before sleeping; the combiner fills the state then loads
/// the flag. Sequential consistency on all four accesses means at least
/// one side observes the other — either the waiter sees its result and
/// never sleeps, or the combiner sees the flag and notifies.
#[derive(Debug)]
pub(crate) struct WaitCell {
    /// `true` while a waiter is (about to be) asleep on this slot. For
    /// thread waiters this brackets the park exactly; for async waiters
    /// it is set for as long as a waker is registered.
    engaged: AtomicBool,
    /// The registered waiter. Thread handles persist across requests
    /// (written at lease claim, cleared at lease release); wakers are
    /// re-registered on every poll and consumed by the notification.
    waiter: Mutex<Option<WaiterKind>>,
}

impl WaitCell {
    pub(crate) fn new() -> Self {
        Self {
            engaged: AtomicBool::new(false),
            waiter: Mutex::new(None),
        }
    }

    /// Registers the calling thread as this cell's waiter. Sync path,
    /// called once at slot-lease claim; the handle stays registered for
    /// the lease's lifetime and `engage`/`disengage` bracket each park.
    pub(crate) fn install_thread(&self) {
        *self.waiter.lock().expect("combiner waiter poisoned") =
            Some(WaiterKind::Thread(crate::sync_shim::thread::current()));
    }

    /// Registers `waker` as this cell's waiter and engages the cell.
    /// Async path, called on every poll that is about to return
    /// `Pending` — the caller must re-check the slot state *after* this
    /// returns (the waiter half of the Dekker handshake).
    pub(crate) fn install_waker(&self, waker: &Waker) {
        *self.waiter.lock().expect("combiner waiter poisoned") =
            Some(WaiterKind::Async(waker.clone()));
        self.engaged.store(true, Ordering::SeqCst);
    }

    /// Flags the calling (thread) waiter as about to park. The caller
    /// must re-check the slot state after this store and skip the park
    /// if the slot was filled meanwhile.
    pub(crate) fn engage(&self) {
        self.engaged.store(true, Ordering::SeqCst);
    }

    /// Clears the park flag after a (thread) waiter wakes.
    ///
    /// Release (not Relaxed): the combiner's SeqCst flag load may read
    /// this store, and a Release/SeqCst pair gives that read a
    /// happens-before edge (free on x86 — a plain store). The flip is
    /// benign either way (worst case one spurious unpark), but the
    /// model's race detector insists every cross-thread read be an edge.
    pub(crate) fn disengage(&self) {
        self.engaged.store(false, Ordering::Release);
    }

    /// Drops any registered waiter and disengages — the slot is being
    /// released back to the unclaimed pool. Release for the same reason
    /// as [`disengage`](Self::disengage).
    pub(crate) fn clear(&self) {
        *self.waiter.lock().expect("combiner waiter poisoned") = None;
        self.engaged.store(false, Ordering::Release);
    }

    /// The combiner half of the handshake: called *after* the slot's
    /// state store (SeqCst), returns the waiter to notify if one is
    /// engaged. Thread handles are cloned (the lease keeps them
    /// registered for the next request); wakers are consumed (a waker
    /// is good for one wake, the task re-registers on its next poll).
    ///
    /// A `None` here is never a lost wakeup: the waiter either had not
    /// engaged yet — in which case its post-engage state re-check (also
    /// SeqCst) is ordered after the combiner's state store and sees the
    /// result — or was a thread that already woke and disengaged.
    pub(crate) fn take_notification(&self) -> Option<WaiterKind> {
        if !self.engaged.load(Ordering::SeqCst) {
            return None;
        }
        let mut waiter = self.waiter.lock().expect("combiner waiter poisoned");
        match &*waiter {
            Some(WaiterKind::Thread(thread)) => Some(WaiterKind::Thread(thread.clone())),
            Some(WaiterKind::Async(_)) => {
                // One-shot: consume the waker and disengage so a stale
                // registration is never woken twice. The future's next
                // poll re-installs before it returns `Pending` again.
                self.engaged.store(false, Ordering::Release);
                waiter.take()
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::task::Wake;

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn thread_waiters_persist_across_notifications() {
        let cell = WaitCell::new();
        cell.install_thread();
        assert!(cell.take_notification().is_none(), "not engaged: no wakeup");
        cell.engage();
        assert!(matches!(
            cell.take_notification(),
            Some(WaiterKind::Thread(_))
        ));
        // The handle is cloned, not consumed: a second notification
        // (next request, same lease) still finds it.
        assert!(matches!(
            cell.take_notification(),
            Some(WaiterKind::Thread(_))
        ));
        cell.disengage();
        assert!(cell.take_notification().is_none());
    }

    #[test]
    fn async_wakers_are_consumed_by_the_notification() {
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        let cell = WaitCell::new();
        cell.install_waker(&waker);
        let notification = cell.take_notification().expect("engaged waker");
        notification.notify();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert!(
            cell.take_notification().is_none(),
            "wakers are one-shot: consumed with the notification"
        );
    }

    #[test]
    fn clear_drops_the_registration() {
        let cell = WaitCell::new();
        cell.install_thread();
        cell.engage();
        cell.clear();
        assert!(cell.take_notification().is_none());
    }
}
