//! Opt-in latency metrics: fixed-bucket log₂ histograms over the
//! service's acquire/release paths.
//!
//! The observability discipline is the monomorphic-tier one: **zero
//! cost when disabled**. A service built without
//! [`NameServiceBuilder::metrics`](crate::NameServiceBuilder::metrics)
//! carries `None` and its hot paths pay exactly one never-taken branch;
//! with metrics on, each operation adds two `Instant` reads and one
//! `Relaxed` `fetch_add` into a fixed-size bucket array — no locks, no
//! allocation, no contention beyond the cache line the bucket lives on.
//!
//! The histogram is the live-metrics shape network servers export (the
//! `Stats` endpoint of `renaming-net` serializes
//! [`MetricsSnapshot`]): 64 buckets, bucket `i` counting samples whose
//! latency in nanoseconds has its highest set bit at position `i`
//! (i.e. lies in `[2^i, 2^(i+1))`; bucket 0 additionally holds 0 ns
//! samples). Quantiles interpolate linearly *within* the winning
//! bucket — the fixed-bucket analogue of the workspace's
//! `lerp_quantile` rule. Benchmarks that can afford to keep raw samples
//! (the load generator) still compute their committed quantiles through
//! `renaming_analysis::Summary`; the histogram is for always-on
//! production visibility where an unbounded sample vector is not.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: `u64` nanosecond latencies have at most 64
/// significant-bit positions, so the histogram can never overflow into
/// an "other" bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ latency histogram with `Relaxed` atomic
/// increments — cheap enough to sit on a service hot path, bounded
/// memory regardless of sample count.
///
/// # Example
///
/// ```
/// use renaming_service::LatencyHistogram;
/// use std::time::Duration;
///
/// let hist = LatencyHistogram::new();
/// hist.record(Duration::from_nanos(900));
/// hist.record(Duration::from_nanos(1_100));
/// let snap = hist.snapshot();
/// assert_eq!(snap.count(), 2);
/// // Both samples fall between the recorded extremes' bucket bounds.
/// assert!(snap.quantile(0.5) >= 512.0 && snap.quantile(0.5) < 2048.0);
/// ```
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Total recorded nanoseconds (saturating), for mean latency.
    sum_nanos: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one latency sample. `Relaxed` increments: counts are
    /// exact once the service is quiescent, advisory while operations
    /// are in flight — the same contract as every service counter.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.record_nanos(nanos);
    }

    /// Records one latency sample given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        // Bucket = highest set bit position; 0 ns lands in bucket 0
        // (`max(1)` — there is no "below 1 ns" bucket to distinguish).
        let bucket = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("p50_nanos", &snap.quantile(0.5))
            .finish_non_exhaustive()
    }
}

/// An owned, immutable copy of a [`LatencyHistogram`]'s state:
/// quantile/mean accessors plus the raw buckets for serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean latency in nanoseconds (0.0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / count as f64
        }
    }

    /// The `q`-quantile estimate in nanoseconds, `q` in `[0, 1]`
    /// (0.0 when the histogram is empty).
    ///
    /// Finds the bucket holding the target rank, then interpolates
    /// linearly across that bucket's `[2^i, 2^(i+1))` span by the
    /// rank's position within the bucket — the fixed-bucket analogue of
    /// the interpolated order-statistic quantiles the analysis crate
    /// uses. The error is bounded by one bucket width (a factor of 2 in
    /// latency), the classic log-histogram trade.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        // Interpolated rank in [0, count-1], as in lerp_quantile.
        let rank = (count - 1) as f64 * q;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let end = seen + c;
            if rank < end as f64 {
                // Position of the rank within this bucket, in [0, 1).
                let within = (rank - seen as f64) / c as f64;
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u128 << (i + 1)) as f64;
                return lo + (hi - lo) * within;
            }
            seen = end;
        }
        // Unreachable when count > 0; keep a defined answer anyway.
        f64::MAX
    }

    /// The raw bucket counts: index `i` counts samples in
    /// `[2^i, 2^(i+1))` ns (index 0 also holds 0 ns samples).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Total recorded nanoseconds (saturating at `u64::MAX`).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// The non-empty buckets as `(bucket_floor_nanos, count)` pairs —
    /// the compact form the wire `Stats` endpoint serializes.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

/// The service's metrics façade: one histogram per operation kind.
///
/// Held behind `Option<Arc<..>>` on [`NameService`](crate::NameService)
/// — `None` (the default) is the zero-cost disabled state.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Latency of `acquire_name` (slot publish + combining/direct walk).
    pub acquire: LatencyHistogram,
    /// Latency of `release_name`.
    pub release: LatencyHistogram,
}

impl ServiceMetrics {
    /// Fresh, empty metrics.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            acquire: LatencyHistogram::new(),
            release: LatencyHistogram::new(),
        }
    }

    /// Snapshots both histograms at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            acquire: self.acquire.snapshot(),
            release: self.release.snapshot(),
        }
    }
}

/// A point-in-time copy of a service's [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Acquire-latency histogram snapshot.
    pub acquire: HistogramSnapshot,
    /// Release-latency histogram snapshot.
    pub release: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_and_zero_safe() {
        let hist = LatencyHistogram::new();
        hist.record_nanos(0); // bucket 0
        hist.record_nanos(1); // bucket 0
        hist.record_nanos(2); // bucket 1
        hist.record_nanos(3); // bucket 1
        hist.record_nanos(1024); // bucket 10
        hist.record_nanos(u64::MAX); // bucket 63 — no overflow
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.buckets()[0], 2);
        assert_eq!(snap.buckets()[1], 2);
        assert_eq!(snap.buckets()[10], 1);
        assert_eq!(snap.buckets()[63], 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let hist = LatencyHistogram::new();
        // 100 samples all in bucket 10: [1024, 2048).
        for _ in 0..100 {
            hist.record_nanos(1500);
        }
        let snap = hist.snapshot();
        let p0 = snap.quantile(0.0);
        let p50 = snap.quantile(0.5);
        let p100 = snap.quantile(1.0);
        assert!((1024.0..2048.0).contains(&p0), "{p0}");
        assert!((1024.0..2048.0).contains(&p50), "{p50}");
        assert!((1024.0..=2048.0).contains(&p100), "{p100}");
        assert!(p0 < p50 && p50 < p100, "monotone within the bucket");
    }

    #[test]
    fn quantiles_cross_buckets_by_rank() {
        let hist = LatencyHistogram::new();
        for _ in 0..90 {
            hist.record_nanos(100); // bucket 6: [64, 128)
        }
        for _ in 0..10 {
            hist.record_nanos(1_000_000); // bucket 19
        }
        let snap = hist.snapshot();
        assert!(snap.quantile(0.5) < 128.0, "median in the low bucket");
        assert!(snap.quantile(0.99) >= 524_288.0, "p99 in the tail bucket");
        assert_eq!(snap.nonzero_buckets().len(), 2);
        let mean = snap.mean_nanos();
        assert!(mean > 100.0 && mean < 1_000_000.0, "{mean}");
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.mean_nanos(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn concurrent_records_conserve_counts() {
        let metrics = ServiceMetrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let metrics = &metrics;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        metrics.acquire.record_nanos(i);
                        metrics.release.record(Duration::from_nanos(i));
                    }
                });
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.acquire.count(), 4000);
        assert_eq!(snap.release.count(), 4000);
        assert_eq!(snap.acquire.buckets(), snap.release.buckets());
    }
}
