//! The session pools behind [`NameService`](crate::NameService): a
//! sharded, lock-free checkout path (the default) and the original
//! mutex-guarded pool (kept as a selectable baseline — see
//! [`PoolKind`]).
//!
//! # Why sharded
//!
//! The service's acquire fast path is the whole point of the paper's
//! algorithms: `O(log log n)` TAS probes, no global serialization. A
//! `Mutex<Vec<_>>` checkout in front of that re-introduces exactly the
//! global point of contention the algorithms avoid — every acquire and
//! every release takes the same lock, and on an oversubscribed machine a
//! preempted lock holder convoys every other thread. The
//! [`ShardedPool`] removes it:
//!
//! * a fixed, power-of-two array of **shards**, each a cache-line-padded
//!   bank of `AtomicPtr` slots, so different threads' check-ins land on
//!   different cache lines;
//! * a **per-pool, per-thread shard hint** spreads threads across shards
//!   and sends a thread back to the slot it used last, so the
//!   single-thread fast path is one `swap` on one warm line. Hints are
//!   drawn from each pool's own round-robin counter (keyed by a pool
//!   id in thread-local storage), so a thread's placement in one
//!   `NameService` never dictates its placement in another;
//! * **work stealing**: a checkout that finds its home shard empty
//!   probes the neighboring shards before giving up;
//! * a **bounded slow path**: only when every slot of every shard is
//!   empty does the caller construct a fresh session.
//!
//! All transfers use `swap`/`compare_exchange` of whole pointers —
//! ownership moves atomically in one instruction, no node links are ever
//! traversed, so the classic Treiber-stack ABA hazard cannot arise and
//! no deferred reclamation scheme is needed: whoever swaps a non-null
//! pointer out of a slot owns it exclusively.

use std::cell::RefCell;
use std::ptr;

use crate::sync_shim::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use crate::sync_shim::sync::Mutex;

/// The session-pool implementation a
/// [`NameService`](crate::NameService) checks workers out of.
///
/// Selected via
/// [`NameServiceBuilder::pool_kind`](crate::NameServiceBuilder::pool_kind);
/// both pools hand out the same per-worker sessions, so the choice never
/// affects *which* names a service produces — only how fast checkouts
/// scale across threads (the `service_throughput` experiment records
/// both curves into `BENCH_service.json`).
///
/// # Example
///
/// ```
/// use renaming_service::{Algorithm, NameService, PoolKind, SeedPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = |kind: PoolKind| -> Vec<usize> {
///     let service = NameService::builder(Algorithm::Rebatching, 8)
///         .pool_kind(kind)
///         .seed_policy(SeedPolicy::Fixed(7))
///         .build()
///         .expect("build");
///     (0..10).map(|_| service.acquire().expect("name").value()).collect()
/// };
/// // Same backend, same seed policy: the pool choice is invisible to
/// // single-threaded callers.
/// assert_eq!(seq(PoolKind::Sharded), seq(PoolKind::Mutex));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolKind {
    /// The sharded, lock-free pool (the default): per-shard
    /// cache-line-padded `AtomicPtr` slots, thread-local shard hints,
    /// work-stealing checkout.
    #[default]
    Sharded,
    /// The original `Mutex<Vec<_>>` checkout — one global lock on the
    /// acquire path. Kept as the measured baseline.
    Mutex,
}

/// Idle slots per shard. Four pointers cover the common burst of
/// same-shard check-ins (several threads hashing to one shard) while
/// keeping the padded shard a single 128-byte unit.
const SLOTS_PER_SHARD: usize = 4;

/// Upper bound on the shard count a caller can configure; beyond this
/// the empty-pool probe walk costs more than it saves.
pub(crate) const MAX_SHARDS: usize = 1024;

/// One bank of idle-session slots, aligned and sized to own its cache
/// lines outright (128 bytes covers the adjacent-line prefetcher on
/// x86), so checkouts on one shard never false-share with another.
#[repr(align(128))]
struct Shard<T> {
    slots: [AtomicPtr<T>; SLOTS_PER_SHARD],
}

impl<T> Shard<T> {
    fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }
    }
}

/// Identity source for [`ShardedPool`]s, so each thread's shard hints
/// are keyed by pool instance. Monotonic — ids are never reused, so a
/// dead pool's leftover thread-local entries can never alias a live one.
///
/// Deliberately on `std` even under `--cfg renaming_model`: model
/// atomics are not const-constructible, and a process-global id counter
/// is not part of any modeled protocol (see [`crate::sync_shim`]).
fn next_pool_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);
    NEXT_POOL_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Per-thread cap on remembered `(pool id, hint)` pairs. A thread that
/// somehow touches more pools than this just re-draws a hint from the
/// evicted pool's round-robin counter on its next visit — placement
/// changes, correctness does not.
const HINTS_PER_THREAD: usize = 64;

/// A lock-free pool of idle `Box<T>` items, sharded to kill contention
/// and false sharing on the checkout path.
///
/// `checkout` and `checkin` are lock-free and finish in at most
/// `shards × SLOTS_PER_SHARD` atomic operations. Ownership transfers via
/// whole-pointer `swap`, so no ABA hazard exists and no reclamation
/// scheme is needed.
pub(crate) struct ShardedPool<T> {
    shards: Box<[Shard<T>]>,
    /// `shards.len() - 1`; the length is a power of two.
    mask: usize,
    /// Items dropped by `checkin` because every slot was occupied. Only
    /// possible when more than `shards.len() × SLOTS_PER_SHARD` items
    /// are idle at once — the pool is already warm, so retiring the
    /// surplus is the bounded-memory choice.
    retired: AtomicU64,
    /// This pool's key into the per-thread hint table.
    id: u64,
    /// First-touch round-robin counter for this pool's hints. Scoped
    /// per pool: a thread's placement here says nothing about its
    /// placement in any other pool (a process-global counter used to
    /// make two services collide the same threads onto the same shard
    /// index systematically).
    next_hint: AtomicUsize,
}

// SAFETY: the pool owns heap pointers to `T` and hands each out to at
// most one thread at a time (`swap` takes the pointer out of the slot
// before anyone touches it), so moving the pool between threads moves
// only `T`s no other thread can reach — sound whenever sending `T` is.
unsafe impl<T: Send> Send for ShardedPool<T> {}
// SAFETY: shared access goes exclusively through the slots' atomics;
// the single-holder transfer discipline above means `&ShardedPool`
// never yields two threads access to the same `T`, so `Sync` needs
// only `T: Send` (no `&T` is ever shared across threads).
unsafe impl<T: Send> Sync for ShardedPool<T> {}

impl<T> ShardedPool<T> {
    /// A pool with `shards` shards, rounded up to a power of two and
    /// clamped to `1..=MAX_SHARDS`.
    pub(crate) fn new(shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        Self {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            mask: shards - 1,
            retired: AtomicU64::new(0),
            id: next_pool_id(),
            next_hint: AtomicUsize::new(0),
        }
    }

    /// The calling thread's home shard index in *this* pool (before
    /// masking). Assigned round-robin per pool on first touch, so
    /// simultaneously active threads start on distinct shards; stable
    /// thereafter, so a thread re-checks-out the worker it just checked
    /// in — the warm line, the warm session.
    fn shard_hint(&self) -> usize {
        thread_local! {
            static HINTS: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
        }
        HINTS.with(|hints| {
            let mut hints = hints.borrow_mut();
            if let Some(&(_, hint)) = hints.iter().find(|&&(id, _)| id == self.id) {
                return hint;
            }
            // AcqRel (not Relaxed): the RMW chain on this counter is the
            // only synchronization between the threads drawing hints, and
            // the model's race detector requires each link of the chain
            // to carry a happens-before edge. Once-per-(thread, pool), so
            // the fence cost is irrelevant.
            let hint = self.next_hint.fetch_add(1, Ordering::AcqRel);
            if hints.len() >= HINTS_PER_THREAD {
                hints.remove(0); // evict the oldest-assigned entry
            }
            hints.push((self.id, hint));
            hint
        })
    }

    /// The default shard count: the machine's parallelism, rounded up to
    /// a power of two (more concurrent threads than cores gain nothing
    /// from more shards — they cannot all be checking out at once).
    pub(crate) fn default_shards() -> usize {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// The configured shard count.
    pub(crate) fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Takes an idle item, preferring the calling thread's home shard
    /// and stealing from neighbors before reporting the pool empty.
    pub(crate) fn checkout(&self) -> Option<Box<T>> {
        let home = self.shard_hint() & self.mask;
        for probe in 0..self.shards.len() {
            let shard = &self.shards[(home + probe) & self.mask];
            for slot in &shard.slots {
                // Cheap read first: swapping an empty slot would pull its
                // line exclusive for nothing on the steal path. Acquire
                // (free on x86): the non-null it may observe is another
                // thread's Release publication, and the model's race
                // detector requires the edge even on the hint.
                if slot.load(Ordering::Acquire).is_null() {
                    continue;
                }
                // AcqRel: Acquire pairs with the publishing CAS (we are
                // about to own what it published); Release orders this
                // thread's history before the null it leaves behind,
                // which a concurrent hint load may observe.
                let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
                if !p.is_null() {
                    // SAFETY: `p` came from `Box::into_raw` in `checkin`
                    // and the swap made this thread its only holder.
                    return Some(unsafe { Box::from_raw(p) });
                }
            }
        }
        None
    }

    /// Returns an item to the pool. If every slot of every shard is
    /// occupied the item is dropped (counted in [`Self::retired`]).
    pub(crate) fn checkin(&self, item: Box<T>) {
        let p = Box::into_raw(item);
        let home = self.shard_hint() & self.mask;
        for probe in 0..self.shards.len() {
            let shard = &self.shards[(home + probe) & self.mask];
            for slot in &shard.slots {
                // Acquire on the hint load and on both CAS outcomes, for
                // the same reason as `checkout`: whatever pointer (or
                // null) this thread observes was stored by another
                // thread's Release operation, and every such read must
                // be a happens-before edge. AcqRel success: Acquire for
                // the null we consume, Release for the pointer we
                // publish.
                if slot.load(Ordering::Acquire).is_null()
                    && slot
                        .compare_exchange(
                            ptr::null_mut(),
                            p,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                {
                    return;
                }
            }
        }
        // AcqRel pairs with the Acquire read in `retired`, so the count
        // is exact after the churning threads are joined (the torture
        // tests' conservation law counts on it).
        self.retired.fetch_add(1, Ordering::AcqRel);
        // SAFETY: `p` was produced by `Box::into_raw` above and was never
        // published (every compare_exchange failed).
        drop(unsafe { Box::from_raw(p) });
    }

    /// Idle items currently pooled. A pointer scan: advisory while
    /// checkouts are in flight, exact once the pool is quiescent (thread
    /// join orders the slots' CAS publications before the scan). Acquire
    /// loads (free on x86) so a mid-churn scan still reads each slot
    /// through a happens-before edge.
    pub(crate) fn pooled(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|shard| shard.slots.iter())
            .filter(|slot| !slot.load(Ordering::Acquire).is_null())
            .count()
    }

    /// Items dropped on check-in because the pool was full. Acquire, to
    /// pair with the overflow path's AcqRel increment.
    pub(crate) fn retired(&self) -> u64 {
        self.retired.load(Ordering::Acquire)
    }
}

impl<T> Drop for ShardedPool<T> {
    fn drop(&mut self) {
        for shard in self.shards.iter() {
            for slot in &shard.slots {
                let p = slot.swap(ptr::null_mut(), Ordering::Acquire);
                if !p.is_null() {
                    // SAFETY: exclusive access (`&mut self`), pointer came
                    // from `Box::into_raw`.
                    drop(unsafe { Box::from_raw(p) });
                }
            }
        }
    }
}

/// The original pool: one mutex around a vector of idle items. Correct
/// and simple; serializes every checkout and check-in.
pub(crate) struct MutexPool<T> {
    items: Mutex<Vec<Box<T>>>,
}

impl<T> MutexPool<T> {
    pub(crate) fn new() -> Self {
        Self {
            items: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn checkout(&self) -> Option<Box<T>> {
        self.items.lock().expect("service pool poisoned").pop()
    }

    pub(crate) fn checkin(&self, item: Box<T>) {
        self.items.lock().expect("service pool poisoned").push(item);
    }

    pub(crate) fn pooled(&self) -> usize {
        self.items.lock().expect("service pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn shard_counts_round_up_and_clamp() {
        assert_eq!(ShardedPool::<u32>::new(0).shards(), 1);
        assert_eq!(ShardedPool::<u32>::new(1).shards(), 1);
        assert_eq!(ShardedPool::<u32>::new(3).shards(), 4);
        assert_eq!(ShardedPool::<u32>::new(8).shards(), 8);
        assert_eq!(ShardedPool::<u32>::new(usize::MAX).shards(), MAX_SHARDS);
    }

    #[test]
    fn checkout_returns_checked_in_items() {
        let pool = ShardedPool::new(4);
        assert!(pool.checkout().is_none());
        pool.checkin(Box::new(7u32));
        pool.checkin(Box::new(8u32));
        assert_eq!(pool.pooled(), 2);
        let mut got = vec![*pool.checkout().expect("one"), *pool.checkout().expect("two")];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
        assert!(pool.checkout().is_none());
    }

    #[test]
    fn same_thread_gets_its_own_item_back() {
        // The single-thread fast path: the hint shard's first slot is
        // both the check-in and the checkout target, so the same box
        // cycles — this is what keeps `SeedPolicy::Fixed` sequences
        // stable when the service swaps pools.
        let pool = ShardedPool::new(8);
        let first = Box::new(41u32);
        let addr = &*first as *const u32 as usize;
        pool.checkin(first);
        pool.checkin(Box::new(42u32));
        let got = pool.checkout().expect("item");
        assert_eq!(&*got as *const u32 as usize, addr);
        assert_eq!(*got, 41);
    }

    #[test]
    fn overflow_retires_rather_than_grows() {
        let pool = ShardedPool::new(1); // 1 shard => SLOTS_PER_SHARD slots
        for i in 0..SLOTS_PER_SHARD as u32 {
            pool.checkin(Box::new(i));
        }
        assert_eq!(pool.pooled(), SLOTS_PER_SHARD);
        assert_eq!(pool.retired(), 0);
        pool.checkin(Box::new(99));
        assert_eq!(pool.pooled(), SLOTS_PER_SHARD, "full pool must not grow");
        assert_eq!(pool.retired(), 1, "surplus item must be retired");
    }

    /// An item whose drop decrements a shared live counter, so leaks
    /// show up as a nonzero count.
    struct Tracked {
        live: Arc<AtomicUsize>,
    }

    impl Tracked {
        fn new(live: &Arc<AtomicUsize>) -> Box<Self> {
            live.fetch_add(1, Ordering::Relaxed);
            Box::new(Self { live: Arc::clone(live) })
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn dropping_the_pool_frees_every_pooled_item() {
        let live = Arc::new(AtomicUsize::new(0));
        let pool = ShardedPool::new(4);
        for _ in 0..10 {
            pool.checkin(Tracked::new(&live));
        }
        let checked_out = pool.checkout().expect("non-empty");
        assert!(live.load(Ordering::Relaxed) >= 1);
        drop(pool);
        assert_eq!(
            live.load(Ordering::Relaxed),
            1,
            "pool drop must free every pooled item (one survives: it is checked out)"
        );
        drop(checked_out);
        assert_eq!(live.load(Ordering::Relaxed), 0);
    }

    /// The torture invariants, at pool level: many threads, few shards,
    /// heavy churn; no box is ever held by two threads at once, and at
    /// the end nothing has leaked (every item is pooled, retired, or was
    /// dropped by the drain below).
    #[test]
    fn torture_no_double_checkout_and_no_leaks() {
        const THREADS: usize = 16;
        const ROUNDS: usize = 400;

        let pool = ShardedPool::new(2); // threads >> shards
        let live = Arc::new(AtomicUsize::new(0));
        let created = AtomicUsize::new(0);
        let out = Mutex::new(HashSet::<usize>::new());

        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let (pool, live, created, out) = (&pool, &live, &created, &out);
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        let item = pool.checkout().unwrap_or_else(|| {
                            created.fetch_add(1, Ordering::Relaxed);
                            Tracked::new(live)
                        });
                        let addr = &*item as *const Tracked as usize;
                        assert!(
                            out.lock().expect("out set").insert(addr),
                            "item {addr:#x} checked out by two threads at once"
                        );
                        std::hint::spin_loop();
                        assert!(out.lock().expect("out set").remove(&addr));
                        pool.checkin(item);
                    }
                });
            }
        });

        assert!(out.lock().expect("out set").is_empty());
        let created = created.load(Ordering::Relaxed);
        let accounted = pool.pooled() + pool.retired() as usize;
        assert_eq!(
            created, accounted,
            "every created item must be pooled or retired once the churn stops"
        );
        assert_eq!(
            live.load(Ordering::Relaxed),
            pool.pooled(),
            "live items == pooled items (retired ones were dropped)"
        );
        drop(pool);
        assert_eq!(live.load(Ordering::Relaxed), 0, "pool drop leaked items");
    }

    #[test]
    fn shard_hints_are_scoped_per_pool() {
        let a = ShardedPool::<u32>::new(8);
        let b = ShardedPool::<u32>::new(8);
        // Three threads draw their hints from A first (joined in order,
        // so the assignment is deterministic).
        std::thread::scope(|scope| {
            for expected in 0..3 {
                let a = &a;
                scope
                    .spawn(move || assert_eq!(a.shard_hint(), expected))
                    .join()
                    .expect("join");
            }
            // A later thread whose first touch is B: under the old
            // process-global counter it would inherit the continuation
            // (hint 3); per-pool scoping gives it B's own hint 0.
            let (a, b) = (&a, &b);
            scope
                .spawn(move || {
                    assert_eq!(b.shard_hint(), 0, "B assigns from its own counter");
                    assert_eq!(a.shard_hint(), 3, "A continues its own round-robin");
                    // Hints are sticky per (thread, pool).
                    assert_eq!(b.shard_hint(), 0);
                    assert_eq!(a.shard_hint(), 3);
                })
                .join()
                .expect("join");
        });
    }

    #[test]
    fn two_pools_distribute_the_same_threads_independently() {
        // The regression this guards: with one global hint per thread,
        // the threads that happened to land on even hints in one service
        // all collided on shard 0 of every other 2-shard service too.
        // Per-pool assignment hands each pool its own dense 0..n hints
        // in that pool's first-touch order.
        let a = ShardedPool::<u32>::new(4);
        let b = ShardedPool::<u32>::new(4);
        let hints = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let (a, b, hints) = (&a, &b, &hints);
                scope
                    .spawn(move || {
                        // Half the threads meet A first, half meet B first.
                        let (ha, hb) = if i % 2 == 0 {
                            let ha = a.shard_hint();
                            (ha, b.shard_hint())
                        } else {
                            let hb = b.shard_hint();
                            (a.shard_hint(), hb)
                        };
                        hints.lock().expect("hints").push((ha, hb));
                    })
                    .join()
                    .expect("join");
            }
        });
        let hints = hints.into_inner().expect("hints");
        let mut a_hints: Vec<usize> = hints.iter().map(|&(ha, _)| ha).collect();
        let mut b_hints: Vec<usize> = hints.iter().map(|&(_, hb)| hb).collect();
        a_hints.sort_unstable();
        b_hints.sort_unstable();
        // Each pool hands out a dense, collision-free 0..4 — maximal
        // spread over 4 shards in *both* pools simultaneously.
        assert_eq!(a_hints, vec![0, 1, 2, 3]);
        assert_eq!(b_hints, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mutex_pool_round_trips() {
        let pool = MutexPool::new();
        assert!(pool.checkout().is_none());
        pool.checkin(Box::new(5u32));
        assert_eq!(pool.pooled(), 1);
        assert_eq!(*pool.checkout().expect("item"), 5);
        assert_eq!(pool.pooled(), 0);
    }
}
