//! The async acquire facade: `acquire().await` over the same combiner
//! slots the sync path uses.
//!
//! The paper's asynchronous-processes model — processes arbitrarily
//! delayed between steps — is exactly the execution regime of tasks
//! yielding to an executor, so an awaitable acquire is the faithful
//! production analogue of the sync API, not a bolt-on. The facade is a
//! hand-rolled [`Future`] over std's `Waker`/`Poll` machinery only: no
//! external runtime, consistent with the workspace's vendored-stubs
//! constraint.
//!
//! # How a poll maps onto the combining protocol
//!
//! * **First poll, lock free:** the task elects itself combiner and
//!   serves itself synchronously (the combiner's `serve_locked`) — a
//!   batch of one, identical to the sync fast path. A single-task
//!   caller under [`SeedPolicy::Fixed`](crate::SeedPolicy::Fixed)
//!   therefore produces the *same sequence* as sync combining (and as
//!   the direct path) — pinned by the golden tests.
//! * **First poll, lock busy:** the task claims a request slot directly
//!   (no thread lease — tasks migrate between executor threads),
//!   registers its [`std::task::Waker`] in the slot's wait cell,
//!   publishes `PENDING`, and makes one more lock attempt before
//!   returning [`Poll::Pending`]. That failed SeqCst lock CAS is the
//!   liveness linchpin: it is ordered before the active combiner's
//!   unlock, whose exit re-check then cannot miss the published request
//!   (see the liveness notes in the combiner module).
//! * **Re-poll:** consume the verdict if the slot is filled; otherwise
//!   re-register the fresh waker and re-check state (the waiter half of
//!   the Dekker handshake) before suspending again.
//! * **Drop after publish (cancellation):** withdraw the request via
//!   the `PENDING → EMPTY` CAS if no combiner adopted it — consuming
//!   the queued-hint credit — or, if one did, wait out the in-flight
//!   batch and route a won name through the service's normal release
//!   (the abandoned-win recycling path), so neither a slot nor a name
//!   can leak. The `pooled + retired + resident` worker conservation
//!   law and namespace occupancy both hold across cancellations.
//!
//! On a service built with [`AcquireMode::Direct`](crate::AcquireMode),
//! there are no combiner slots; the future completes on first poll
//! through the direct path (never `Pending`), keeping
//! [`AsyncNameGuard`]'s release path mode-independent.

use std::fmt;
use std::future::Future;
use std::ops::Deref;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use renaming_core::{Name, RenamingError};

use crate::service::NameService;
use crate::slots::SlotPoll;

/// Records an acquire outcome with the service's oracle (no-op when
/// disabled) and passes the result through. A future cancelled before
/// any outcome — withdraw won the race — records a start with no
/// outcome, which the checker tolerates: starts create no holds.
fn note_outcome(
    service: &NameService,
    result: Result<Name, RenamingError>,
) -> Result<Name, RenamingError> {
    match &result {
        Ok(name) => service.oracle_note_win(*name),
        Err(_) => service.oracle_note_fail(),
    }
    result
}

/// A [`NameService`] driven through `async` acquires.
///
/// Wraps the service in an [`Arc`] (so guards can be `'static` and
/// travel between tasks) and exposes [`acquire`](Self::acquire) as a
/// future. Everything else — release, occupancy, worker accounting —
/// is reached through [`Deref`] to the inner service.
///
/// # Example
///
/// ```
/// use renaming_service::{AcquireMode, Algorithm, NameService, exec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = renaming_service::AsyncNameService::new(
///     NameService::builder(Algorithm::Rebatching, 16)
///         .acquire_mode(AcquireMode::Combining)
///         .build()?,
/// );
/// let guard = exec::block_on(service.acquire())?;
/// assert!(guard.value() < service.namespace_size());
/// drop(guard); // name recycled, exactly like the sync guard
/// assert_eq!(service.held(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AsyncNameService {
    inner: Arc<NameService>,
}

impl AsyncNameService {
    /// Wraps `service` for async acquisition.
    pub fn new(service: NameService) -> Self {
        Self {
            inner: Arc::new(service),
        }
    }

    /// Wraps an already-shared service.
    pub fn from_arc(service: Arc<NameService>) -> Self {
        Self { inner: service }
    }

    /// The wrapped service (also reachable through `Deref`).
    pub fn service(&self) -> &NameService {
        &self.inner
    }

    /// Acquires a unique name asynchronously, resolving to an RAII
    /// [`AsyncNameGuard`] that releases the name on drop.
    ///
    /// On a combining-mode service the returned future publishes into
    /// the combiner's request slots and suspends (via its task's
    /// [`std::task::Waker`]) until a combiner fills them; on a
    /// direct-mode service it completes on first poll. Dropping the
    /// future before completion is safe — see the module docs on
    /// cancellation.
    ///
    /// # Errors
    ///
    /// Resolves to [`RenamingError::NamespaceExhausted`] when the
    /// namespace cannot hold another name.
    pub fn acquire(&self) -> AcquireFuture<'_> {
        AcquireFuture {
            service: self,
            state: FutureState::Start,
        }
    }

    fn guard(&self, name: Name) -> AsyncNameGuard {
        AsyncNameGuard {
            service: Arc::clone(&self.inner),
            name,
            armed: true,
        }
    }
}

impl Deref for AsyncNameService {
    type Target = NameService;

    fn deref(&self) -> &NameService {
        &self.inner
    }
}

/// Where an [`AcquireFuture`] is in the slot protocol.
enum FutureState {
    /// Not yet published: the next poll tries the fast path first.
    Start,
    /// Published into combiner slot `index`; the claim on that slot is
    /// ours until we consume the verdict or withdraw on drop.
    Published { index: usize },
    /// Resolved (or never started); nothing to clean up.
    Done,
}

/// The future returned by [`AsyncNameService::acquire`].
///
/// Hand-rolled over std's task machinery — no runtime dependency; any
/// executor (including the minimal ones in the public [`crate::exec`]
/// module) can drive
/// it. Safe to drop at any point: a published-but-unserved request is
/// withdrawn, an already-served one has its name recycled.
#[must_use = "futures do nothing unless polled"]
pub struct AcquireFuture<'s> {
    service: &'s AsyncNameService,
    state: FutureState,
}

impl Future for AcquireFuture<'_> {
    type Output = Result<AsyncNameGuard, RenamingError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let service = this.service.service();
        if let FutureState::Start = this.state {
            // The oracle's AcquireStart is recorded here, on first
            // poll: the request logically enters the service now.
            service.oracle_note_start();
            let Some(combiner) = service.combiner() else {
                // Direct mode: no slots to publish into; the direct
                // path is synchronous and fast, complete immediately.
                this.state = FutureState::Done;
                return Poll::Ready(note_outcome(service, service.acquire_direct())
                    .map(|name| this.service.guard(name)));
            };
            if combiner.try_lock() {
                // Uncontended: serve ourselves as a batch of one —
                // byte-identical to the sync combining (and direct)
                // fast path, which is what pins the async goldens.
                this.state = FutureState::Done;
                return Poll::Ready(note_outcome(service, combiner.serve_locked(service))
                    .map(|name| this.service.guard(name)));
            }
            combiner.note_contention();
            let Some(index) = combiner.table().claim() else {
                // Every slot taken: fall back to the direct path, as
                // the sync waiter does.
                this.state = FutureState::Done;
                return Poll::Ready(note_outcome(service, service.acquire_direct())
                    .map(|name| this.service.guard(name)));
            };
            // Register the waker *before* publishing so there is no
            // window in which a combiner could fill the slot and find
            // nobody to notify.
            let slot = combiner.table().slot(index);
            slot.wait.install_waker(cx.waker());
            combiner.announce();
            slot.publish();
            this.state = FutureState::Published { index };
        }
        let FutureState::Published { index } = this.state else {
            panic!("AcquireFuture polled after completion");
        };
        let combiner = service.combiner().expect("published implies combining mode");
        let slot = combiner.table().slot(index);
        loop {
            match slot.poll() {
                SlotPoll::Done(value) => {
                    slot.finish();
                    combiner.table().release(index);
                    this.state = FutureState::Done;
                    // The requester — not the combiner that filled the
                    // slot — records the win, as on the sync path.
                    service.oracle_note_win(Name::new(value));
                    return Poll::Ready(Ok(this.service.guard(Name::new(value))));
                }
                SlotPoll::Failed => {
                    slot.finish();
                    combiner.table().release(index);
                    this.state = FutureState::Done;
                    service.oracle_note_fail();
                    return Poll::Ready(Err(RenamingError::NamespaceExhausted {
                        namespace: service.namespace_size(),
                    }));
                }
                SlotPoll::Waiting => {}
            }
            if combiner.try_lock() {
                // The role is free: serve the queue ourselves — our own
                // slot included, so the next loop iteration consumes
                // the verdict. (SERVING by another combiner is
                // impossible here: adoption and fill happen under the
                // lock we just took.)
                combiner.drain_as_combiner(service);
                continue;
            }
            // The lock is busy (a SeqCst CAS that read `true` — the
            // ordering hook the combiner's exit re-check needs, see the
            // module docs). Re-register the fresh waker, then re-check
            // the state one last time: the Dekker handshake's waiter
            // half, so a fill racing with this registration is never
            // missed.
            slot.wait.install_waker(cx.waker());
            if let SlotPoll::Waiting = slot.poll() {
                return Poll::Pending;
            }
        }
    }
}

impl Drop for AcquireFuture<'_> {
    fn drop(&mut self) {
        let FutureState::Published { index } = self.state else {
            return;
        };
        let service = self.service.service();
        let combiner = service.combiner().expect("published implies combining mode");
        let slot = combiner.table().slot(index);
        if slot.withdraw() {
            // No combiner adopted the request: the PENDING → EMPTY CAS
            // unpublished it atomically. Consume the hint credit we
            // announced at publish.
            combiner.retract();
        } else {
            // A combiner adopted the request (the adoption CAS won, so
            // our withdraw lost) — the verdict is being produced under
            // the combiner lock right now. Wait it out and recycle an
            // abandoned win through the normal release path, exactly
            // like a dropped sync guard.
            loop {
                match slot.poll() {
                    SlotPoll::Done(value) => {
                        slot.finish();
                        // Record the adopted win before releasing it so
                        // the oracle history pairs the two events; the
                        // cancelled requester is the participant for
                        // both, mirroring a dropped sync guard.
                        service.oracle_note_win(Name::new(value));
                        let _ = service.release_name(Name::new(value));
                        break;
                    }
                    SlotPoll::Failed => {
                        slot.finish();
                        service.oracle_note_fail();
                        break;
                    }
                    SlotPoll::Waiting => std::thread::yield_now(),
                }
            }
        }
        combiner.table().release(index);
    }
}

impl fmt::Debug for AcquireFuture<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match self.state {
            FutureState::Start => "start",
            FutureState::Published { .. } => "published",
            FutureState::Done => "done",
        };
        f.debug_struct("AcquireFuture")
            .field("algorithm", &self.service.algorithm())
            .field("state", &state)
            .finish()
    }
}

/// Owned access to one asynchronously acquired name; the name is
/// released back to the service when the guard drops.
///
/// The async counterpart of [`crate::NameGuard`], with the same
/// mode-independent release path ([`NameService::release_name`] —
/// identical for direct and combining services) but `'static`
/// ownership: the guard holds an [`Arc`] to the service, so it can be
/// moved into tasks, sent across threads, and outlive the
/// [`AsyncNameService`] handle that produced it.
///
/// # Example
///
/// ```
/// use renaming_service::{AcquireMode, Algorithm, AsyncNameService, NameService, exec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = AsyncNameService::new(
///     NameService::builder(Algorithm::Rebatching, 8)
///         .acquire_mode(AcquireMode::Combining)
///         .build()?,
/// );
/// let guard = exec::block_on(service.acquire())?;
/// assert_eq!(service.held(), 1);
/// drop(guard);
/// assert_eq!(service.held(), 0, "drop released the name");
/// # Ok(())
/// # }
/// ```
#[must_use = "dropping the guard immediately releases the name"]
pub struct AsyncNameGuard {
    service: Arc<NameService>,
    name: Name,
    armed: bool,
}

impl AsyncNameGuard {
    /// The held name.
    pub fn name(&self) -> Name {
        self.name
    }

    /// The held name's integer value (always `< namespace_size`).
    pub fn value(&self) -> usize {
        self.name.value()
    }

    /// The service this guard belongs to.
    pub fn service(&self) -> &NameService {
        &self.service
    }

    /// Releases the name now, surfacing the backend's answer (drop
    /// swallows it).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::ReleaseUnsupported`] if a custom
    /// backend is one-shot; the name then stays taken.
    pub fn release(mut self) -> Result<(), RenamingError> {
        self.armed = false;
        self.service.release_name(self.name)
    }

    /// Detaches the name from the guard **without** releasing it. The
    /// caller takes over ownership and is responsible for an eventual
    /// [`NameService::release_name`].
    pub fn into_name(mut self) -> Name {
        self.armed = false;
        self.name
    }
}

impl Deref for AsyncNameGuard {
    type Target = Name;

    fn deref(&self) -> &Name {
        &self.name
    }
}

impl Drop for AsyncNameGuard {
    fn drop(&mut self) {
        if self.armed {
            // A custom one-shot backend would reject the release; leaking
            // the slot is the documented drop behaviour there. Built-in
            // backends always accept. The guard-drop entry point lets
            // the oracle record this as a `GuardDrop` event.
            let _ = self.service.release_name_from_guard(self.name);
        }
    }
}

impl fmt::Debug for AsyncNameGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncNameGuard")
            .field("name", &self.name)
            .field("algorithm", &self.service.algorithm())
            .finish()
    }
}

impl fmt::Display for AsyncNameGuard {
    /// Forwards to the name, so guards drop into format strings.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.name, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcquireMode, Algorithm, SeedPolicy};

    fn combining_service(capacity: usize) -> AsyncNameService {
        AsyncNameService::new(
            NameService::builder(Algorithm::Rebatching, capacity)
                .acquire_mode(AcquireMode::Combining)
                .seed_policy(SeedPolicy::Fixed(9))
                .build()
                .expect("build"),
        )
    }

    /// Polls `future` exactly once against a throwaway waker.
    fn poll_once<F: Future>(future: Pin<&mut F>) -> Poll<F::Output> {
        let waker = crate::exec::test_waker();
        let mut cx = Context::from_waker(&waker);
        future.poll(&mut cx)
    }

    #[test]
    fn direct_mode_completes_on_first_poll() {
        let service = AsyncNameService::new(
            NameService::builder(Algorithm::Rebatching, 4)
                .seed_policy(SeedPolicy::Fixed(9))
                .build()
                .expect("build"),
        );
        let mut future = std::pin::pin!(service.acquire());
        let Poll::Ready(Ok(guard)) = poll_once(future.as_mut()) else {
            panic!("direct mode must complete synchronously");
        };
        assert!(guard.value() < service.namespace_size());
        drop(guard);
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn cancelled_future_withdraws_an_unserved_request() {
        let service = combining_service(4);
        let combiner = service.service().combiner().expect("combining mode");
        // Stage a busy combiner so the poll takes the publish path.
        assert!(combiner.try_lock());
        {
            let mut future = std::pin::pin!(service.acquire());
            assert!(
                poll_once(future.as_mut()).is_pending(),
                "lock is held: the future must publish and suspend"
            );
            assert_eq!(combiner.queued_hint(), 1, "published request announced");
            // Future dropped here, mid-flight, before any combiner
            // adopts the request.
        }
        assert_eq!(
            combiner.queued_hint(),
            0,
            "withdraw must consume the announce credit"
        );
        combiner.unlock_for_test();
        assert_eq!(service.held(), 0, "no name was won, none may leak");
        // The slot must be claimable again, and the service fully
        // functional.
        let guard = crate::exec::block_on(service.acquire()).expect("acquire after cancel");
        drop(guard);
        assert_eq!(service.held(), 0);
    }

    #[test]
    fn cancelled_future_recycles_an_adopted_win() {
        let service = combining_service(4);
        let combiner = service.service().combiner().expect("combining mode");
        assert!(combiner.try_lock());
        let mut future = Box::pin(service.acquire());
        assert!(poll_once(future.as_mut()).is_pending());
        // We are the staged combiner: serve the published request (the
        // drain adopts and fills the slot), *then* drop the future —
        // the withdraw CAS must lose and the won name must be recycled.
        combiner.drain_as_combiner(service.service());
        assert_eq!(service.held(), 1, "the batch won a name for the request");
        drop(future);
        assert_eq!(
            service.held(),
            0,
            "dropping a served-but-unconsumed future must recycle its name"
        );
        assert_eq!(combiner.queued_hint(), 0);
        // Conservation: the drain's worker is parked resident; nothing
        // leaked.
        assert_eq!(
            service.worker_count(),
            service.pooled_workers()
                + service.retired_workers() as usize
                + service.resident_workers(),
        );
    }

    #[test]
    fn completed_future_releases_its_slot_claim() {
        let service = combining_service(4);
        let combiner = service.service().combiner().expect("combining mode");
        let slots = combiner.table().len();
        for _ in 0..3 * slots {
            // Each acquire claims a slot only if it publishes; either
            // way, after completion every claim must be back.
            let guard = crate::exec::block_on(service.acquire()).expect("acquire");
            drop(guard);
        }
        assert_eq!(service.held(), 0);
        let mut claimed = Vec::new();
        while let Some(index) = combiner.table().claim() {
            claimed.push(index);
        }
        assert_eq!(claimed.len(), slots, "every slot claim was released");
        for index in claimed {
            combiner.table().release(index);
        }
    }
}
