//! ARCHITECTURE.md's ordering contract table is checked against the
//! service's concurrency sources: for each of the four hot modules, the
//! set of memory orderings the code uses must equal the set the table
//! documents, every documented field must exist in its file, and every
//! referenced model suite must exist on disk. Documentation that cannot
//! drift — change an `Ordering::` in `slots.rs`/`wait.rs`/
//! `combiner.rs`/`pool.rs` and this test demands the contract row moves
//! with it (same discipline as `crates/bench/tests/experiments_md.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The four sources the contract covers.
const CONTRACT_FILES: [&str; 4] = ["slots.rs", "wait.rs", "combiner.rs", "pool.rs"];

/// Every ordering name the scan recognizes.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One parsed contract row: (field cell, orderings cell, coverage cell).
type Row = (String, String, String);

/// Parses the contract table out of ARCHITECTURE.md: file -> rows.
fn parse_contract_table(markdown: &str) -> BTreeMap<String, Vec<Row>> {
    let mut rows: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    for line in markdown.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() != 5 {
            continue;
        }
        let file = cells[0].trim_matches('`');
        if !CONTRACT_FILES.contains(&file) {
            continue; // header, separator, or some other table
        }
        rows.entry(file.to_string()).push_or_insert((
            cells[1].to_string(),
            cells[2].to_string(),
            cells[4].to_string(),
        ));
    }
    rows
}

trait PushOrInsert<T> {
    fn push_or_insert(self, value: T);
}

impl<T> PushOrInsert<T> for std::collections::btree_map::Entry<'_, String, Vec<T>> {
    fn push_or_insert(self, value: T) {
        self.or_default().push(value);
    }
}

/// The orderings a source file actually uses: comment text stripped,
/// the `#[cfg(test)] mod tests` tail truncated (test-only orderings are
/// not part of the cross-thread contract).
fn orderings_in_source(source: &str) -> BTreeSet<&'static str> {
    let code: String = source
        .lines()
        .take_while(|line| line.trim() != "mod tests {")
        .map(|line| line.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    ORDERINGS
        .into_iter()
        .filter(|name| code.contains(&format!("Ordering::{name}")))
        .collect()
}

/// The orderings a table cell documents.
fn orderings_in_cell(cell: &str) -> BTreeSet<&'static str> {
    ORDERINGS
        .into_iter()
        .filter(|name| cell.contains(name))
        .collect()
}

#[test]
fn ordering_contract_matches_the_sources() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let markdown = std::fs::read_to_string(root.join("ARCHITECTURE.md"))
        .expect("ARCHITECTURE.md must exist at the workspace root");
    assert!(
        markdown.contains("### The ordering contract"),
        "ARCHITECTURE.md lost its ordering-contract section"
    );
    let table = parse_contract_table(&markdown);

    for file in CONTRACT_FILES {
        let source = std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("src").join(file),
        )
        .unwrap_or_else(|e| panic!("contract source src/{file} must exist: {e}"));
        let in_code = orderings_in_source(&source);

        let rows = table
            .get(file)
            .unwrap_or_else(|| panic!("ARCHITECTURE.md's contract table has no rows for `{file}`"));
        let mut documented = BTreeSet::new();
        for (field, orderings, coverage) in rows {
            documented.extend(orderings_in_cell(orderings));

            // The documented field must exist in the file (first
            // backticked token of the field cell).
            let name = field
                .split('`')
                .nth(1)
                .unwrap_or_else(|| panic!("`{file}` row field cell `{field}` names no field"));
            assert!(
                source.contains(name),
                "`{file}` contract row documents `{name}`, which the source no longer contains"
            );

            // Every referenced model suite must exist on disk ("—" rows
            // reference none).
            for part in coverage.split('`').skip(1).step_by(2) {
                if part.ends_with(".rs") {
                    assert!(
                        root.join(part).exists(),
                        "`{file}` contract row references missing model suite {part}"
                    );
                }
            }
        }

        assert_eq!(
            in_code, documented,
            "`{file}`: orderings used by the code differ from the contract table \
             (code: {in_code:?}, table: {documented:?}) — update the table in \
             ARCHITECTURE.md alongside the code"
        );
    }
}
