//! Quickstart: 32 threads pick unique names through the `NameService`
//! front-end, across three selectable backends.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use loose_renaming::prelude::*;

fn run_backend(algorithm: Algorithm, threads: usize) -> Result<(), Box<dyn std::error::Error>> {
    let service = NameService::builder(algorithm, threads)
        .seed_policy(SeedPolicy::Fixed(42))
        .build()?;
    println!(
        "{:<24} capacity {:>3}, namespace {:>4} names",
        service.algorithm(),
        service.capacity(),
        service.namespace_size(),
    );

    // Each thread acquires and *returns its guard*, so all names are held
    // simultaneously — uniqueness among live guards is the guarantee.
    let guards: Vec<NameGuard<'_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = &service;
                scope.spawn(move || service.acquire().expect("within capacity"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread panicked"))
            .collect()
    });

    // Uniqueness is the whole point — double-check it.
    let mut names: Vec<usize> = guards.iter().map(NameGuard::value).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), threads, "duplicate names!");
    let max = names.last().copied().unwrap_or(0);
    println!(
        "    {} threads -> {} unique names, all within 0..{} (largest: {})",
        threads,
        names.len(),
        service.namespace_size(),
        max,
    );
    drop(guards);
    assert_eq!(service.held(), 0);
    println!("    all names recycled on guard drop\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = 32;
    println!("one acquire per thread, three interchangeable backends:\n");
    for algorithm in [
        Algorithm::Rebatching,
        Algorithm::Adaptive,
        Algorithm::FastAdaptive,
    ] {
        run_backend(algorithm, threads)?;
    }

    // Drop-based recycling: the same namespace serves wave after wave.
    let service = NameService::builder(Algorithm::Rebatching, threads)
        .seed_policy(SeedPolicy::Fixed(7))
        .build()?;
    for wave in 0..3 {
        let guards: Vec<NameGuard<'_>> = (0..threads)
            .map(|_| service.acquire().expect("within capacity"))
            .collect();
        println!("wave {wave}: holding {} names", guards.len());
        drop(guards); // all recycled here
    }
    assert_eq!(service.held(), 0);
    println!("all waves recycled; 0 names held");
    Ok(())
}
