//! Quickstart: 32 threads pick unique names from a namespace of 64.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use loose_renaming::core::{Epsilon, Rebatching};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    // Namespace (1+ε)n = 64 with ε = 1 — the paper's ReBatching object.
    let object = Arc::new(Rebatching::with_defaults(n, Epsilon::one())?);
    println!(
        "ReBatching object: capacity {} processes, namespace {} names, {} batches",
        object.capacity(),
        object.namespace_size(),
        object.layout().batch_count(),
    );

    let handles: Vec<_> = (0..n)
        .map(|i| {
            let object = Arc::clone(&object);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(i as u64);
                let name = object.get_name(&mut rng).expect("within capacity");
                (i, name)
            })
        })
        .collect();

    let mut results: Vec<(usize, usize)> = handles
        .into_iter()
        .map(|h| {
            let (thread, name) = h.join().expect("thread panicked");
            (thread, name.value())
        })
        .collect();
    results.sort_by_key(|&(_, name)| name);

    println!("\nthread -> name (sorted by name):");
    for (thread, name) in &results {
        println!("  thread {thread:>2} -> name {name:>2}");
    }

    // Uniqueness is the whole point — double-check it.
    let mut names: Vec<usize> = results.iter().map(|&(_, n)| n).collect();
    names.dedup();
    assert_eq!(names.len(), n, "duplicate names!");
    println!("\nall {n} names unique, all within 0..{}", object.namespace_size());
    Ok(())
}
