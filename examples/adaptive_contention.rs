//! Adaptive renaming: names scale with the *actual* contention `k`, not
//! with the system bound `n` (§5 of the paper).
//!
//! A server is provisioned for 4096 clients, but tonight only a handful
//! show up. `AdaptiveReBatching` hands out names of value `O(k)`; the
//! provisioned capacity costs memory, not name size.
//!
//! ```text
//! cargo run --release --example adaptive_contention
//! ```

use std::sync::Arc;

use loose_renaming::core::{AdaptiveRebatching, Epsilon, FastAdaptiveRebatching};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_round(k: usize, object: &Arc<AdaptiveRebatching>) -> usize {
    let handles: Vec<_> = (0..k)
        .map(|i| {
            let object = Arc::clone(object);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64((k * 1000 + i) as u64);
                object.get_name(&mut rng).expect("capacity").value()
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .max()
        .expect("k >= 1")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = 4096;
    println!("system bound n = {capacity}; measuring the largest assigned name per contention k\n");
    println!("  k   largest name (adaptive)  largest name (fast adaptive)");
    println!("  ---------------------------------------------------------");
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        // Fresh objects per round: renaming is one-shot.
        let adaptive = Arc::new(AdaptiveRebatching::with_defaults(
            capacity,
            Epsilon::one(),
        )?);
        let max_adaptive = run_round(k, &adaptive);

        let fast = Arc::new(FastAdaptiveRebatching::with_defaults(capacity)?);
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let fast = Arc::clone(&fast);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64((k * 77 + i) as u64);
                    fast.get_name(&mut rng).expect("capacity").value()
                })
            })
            .collect();
        let max_fast = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .max()
            .expect("k >= 1");

        println!("  {k:>3}  {max_adaptive:>23}  {max_fast:>27}");
    }
    println!(
        "\nboth stay O(k) — far below the {} locations provisioned for n = {capacity}",
        AdaptiveRebatching::with_defaults(capacity, Epsilon::one())?.total_size()
    );
    Ok(())
}
