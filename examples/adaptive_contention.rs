//! Adaptive renaming: names scale with the *actual* contention `k`, not
//! with the system bound `n` (§5 of the paper).
//!
//! A service is provisioned for 4096 clients, but tonight only a handful
//! show up. The adaptive backends hand out names of value `O(k)`; the
//! provisioned capacity costs memory, not name size.
//!
//! ```text
//! cargo run --release --example adaptive_contention
//! ```

use loose_renaming::prelude::*;

/// `k` concurrent acquisitions against a fresh service; returns the
/// largest name handed out while all `k` are held.
fn largest_name_at_contention(
    algorithm: Algorithm,
    capacity: usize,
    k: usize,
    seed: u64,
) -> Result<usize, Box<dyn std::error::Error>> {
    let service = NameService::builder(algorithm, capacity)
        .seed_policy(SeedPolicy::Fixed(seed))
        .build()?;
    let guards: Vec<NameGuard<'_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|_| {
                let service = &service;
                scope.spawn(move || service.acquire().expect("capacity"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let max = guards.iter().map(NameGuard::value).max().expect("k >= 1");
    Ok(max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = 4096;
    println!("system bound n = {capacity}; measuring the largest assigned name per contention k\n");
    println!("  k   largest name (adaptive)  largest name (fast adaptive)");
    println!("  ---------------------------------------------------------");
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        // Fresh services per round so every round starts from an empty
        // namespace.
        let max_adaptive =
            largest_name_at_contention(Algorithm::Adaptive, capacity, k, 1000 + k as u64)?;
        let max_fast =
            largest_name_at_contention(Algorithm::FastAdaptive, capacity, k, 77 + k as u64)?;
        println!("  {k:>3}  {max_adaptive:>23}  {max_fast:>27}");
    }
    let provisioned = NameService::builder(Algorithm::Adaptive, capacity)
        .build()?
        .namespace_size();
    println!(
        "\nboth stay O(k) — far below the {provisioned} locations provisioned for n = {capacity}"
    );
    Ok(())
}
