//! Domain scenario: slot assignment for concurrent memory reclamation.
//!
//! The paper's introduction motivates renaming with "concurrent memory
//! management" [27]: schemes like hazard pointers need each participating
//! thread to own a small, dense slot index into a shared announcement
//! array. Thread ids are useless for this (they come from an enormous
//! sparse namespace); loose renaming is exactly the right tool — the array
//! only needs `(1+ε)·max_threads` entries.
//!
//! ```text
//! cargo run --release --example thread_pool_slots
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use loose_renaming::core::{Epsilon, Rebatching};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A miniature hazard-slot table: one announcement cell per renamed slot.
struct HazardTable {
    renaming: Rebatching,
    announcements: Vec<AtomicUsize>,
}

impl HazardTable {
    fn new(max_threads: usize) -> Result<Self, Box<dyn std::error::Error>> {
        let renaming = Rebatching::with_defaults(max_threads, Epsilon::one())?;
        let announcements = (0..renaming.namespace_size())
            .map(|_| AtomicUsize::new(0))
            .collect();
        Ok(Self {
            renaming,
            announcements,
        })
    }

    /// Called once per thread: acquire a dense slot.
    fn register(&self, rng: &mut StdRng) -> usize {
        self.renaming
            .get_name(rng)
            .expect("more threads than the table's capacity")
            .value()
    }

    /// Publish a "protected pointer" in the thread's slot.
    fn announce(&self, slot: usize, ptr: usize) {
        self.announcements[slot].store(ptr, Ordering::Release);
    }

    /// Scan announcements (what a reclaimer would do): the scan cost is
    /// proportional to the *renamed* namespace, not to the thread-id space.
    fn scan(&self) -> Vec<usize> {
        self.announcements
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .filter(|&p| p != 0)
            .collect()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_threads = 24;
    let table = Arc::new(HazardTable::new(max_threads)?);
    println!(
        "hazard table: {} announcement cells for up to {} threads",
        table.announcements.len(),
        max_threads
    );

    let handles: Vec<_> = (0..max_threads)
        .map(|i| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                // Simulate a thread arriving with a huge sparse id.
                let sparse_id = 0x5eed_0000_0000 + i * 7919;
                let mut rng = StdRng::seed_from_u64(sparse_id as u64);
                let slot = table.register(&mut rng);
                table.announce(slot, sparse_id);
                (sparse_id, slot)
            })
        })
        .collect();

    let mut mapping: Vec<(usize, usize)> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect();
    mapping.sort_by_key(|&(_, slot)| slot);
    println!("\nsparse thread id     -> dense slot");
    for (sparse, slot) in &mapping {
        println!("  {sparse:#014x} -> {slot:>3}");
    }

    let protected = table.scan();
    assert_eq!(protected.len(), max_threads);
    println!(
        "\nreclaimer scan found {} protected pointers by reading {} cells \
         (instead of 2^48 possible thread ids)",
        protected.len(),
        table.announcements.len()
    );
    Ok(())
}
