//! Domain scenario: slot assignment for concurrent memory reclamation.
//!
//! The paper's introduction motivates renaming with "concurrent memory
//! management" [27]: schemes like hazard pointers need each participating
//! thread to own a small, dense slot index into a shared announcement
//! array. Thread ids are useless for this (they come from an enormous
//! sparse namespace); loose renaming is exactly the right tool — the array
//! only needs `(1+ε)·max_threads` entries, and `NameService` hands the
//! slots out.
//!
//! ```text
//! cargo run --release --example thread_pool_slots
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use loose_renaming::prelude::*;

/// A miniature hazard-slot table: one announcement cell per renamed slot.
struct HazardTable {
    service: NameService,
    announcements: Vec<AtomicUsize>,
}

impl HazardTable {
    fn new(max_threads: usize) -> Result<Self, Box<dyn std::error::Error>> {
        let service = NameService::builder(Algorithm::Rebatching, max_threads)
            .seed_policy(SeedPolicy::Entropy)
            .build()?;
        let announcements = (0..service.namespace_size())
            .map(|_| AtomicUsize::new(0))
            .collect();
        Ok(Self {
            service,
            announcements,
        })
    }

    /// Called once per thread activation: acquire a dense slot. The guard
    /// *is* the registration — dropping it deregisters the thread.
    fn register(&self) -> NameGuard<'_> {
        self.service
            .acquire()
            .expect("more threads than the table's capacity")
    }

    /// Publish a "protected pointer" in the thread's slot.
    fn announce(&self, slot: &NameGuard<'_>, ptr: usize) {
        self.announcements[slot.value()].store(ptr, Ordering::Release);
    }

    /// Scan announcements (what a reclaimer would do): the scan cost is
    /// proportional to the *renamed* namespace, not to the thread-id space.
    fn scan(&self) -> Vec<usize> {
        self.announcements
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .filter(|&p| p != 0)
            .collect()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_threads = 24;
    let table = HazardTable::new(max_threads)?;
    println!(
        "hazard table: {} announcement cells for up to {} threads",
        table.announcements.len(),
        max_threads
    );

    let mut mapping: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..max_threads)
            .map(|i| {
                let table = &table;
                scope.spawn(move || {
                    // Simulate a thread arriving with a huge sparse id.
                    let sparse_id = 0x5eed_0000_0000 + i * 7919;
                    let slot = table.register();
                    table.announce(&slot, sparse_id);
                    // Keep the registration alive for this activation.
                    (sparse_id, slot.into_name().value())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread panicked"))
            .collect()
    });
    mapping.sort_by_key(|&(_, slot)| slot);
    println!("\nsparse thread id     -> dense slot");
    for (sparse, slot) in &mapping {
        println!("  {sparse:#014x} -> {slot:>3}");
    }

    let protected = table.scan();
    assert_eq!(protected.len(), max_threads);
    println!(
        "\nreclaimer scan found {} protected pointers by reading {} cells \
         (instead of 2^48 possible thread ids)",
        protected.len(),
        table.announcements.len()
    );

    // Deregister everyone: hand the detached names back.
    for (_, slot) in mapping {
        table.service.release_name(Name::new(slot))?;
    }
    assert_eq!(table.service.held(), 0);
    println!("all slots handed back; table empty");
    Ok(())
}
