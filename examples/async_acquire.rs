//! Domain scenario: renaming inside an async connection handler.
//!
//! A server multiplexes many logical connections onto a few OS threads;
//! each connection needs a small dense id (a seat) while it is live —
//! for a per-seat buffer, a hazard slot, a shard index. Thread ids are
//! useless (tasks migrate), and task ids are sparse. Loose renaming is
//! the right primitive, and `AsyncNameService` exposes it as
//! `acquire().await`: the future publishes into the combining
//! front-end's request slots and suspends instead of parking, so the
//! executor thread keeps driving other connections.
//!
//! No external runtime is involved — the future is hand-rolled over
//! std's `Waker`/`Poll`, and this example drives it with the
//! workspace's own minimal executors (`exec::block_on`,
//! `exec::drive_all`).
//!
//! ```text
//! cargo run --release --example async_acquire
//! ```

use loose_renaming::prelude::*;
use loose_renaming::service::exec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let connections = 24;
    let service = AsyncNameService::new(
        NameService::builder(Algorithm::Rebatching, connections)
            .acquire_mode(AcquireMode::Combining)
            .seed_policy(SeedPolicy::Entropy)
            .build()?,
    );
    println!(
        "seat table: {} seats for up to {} concurrent connections",
        service.namespace_size(),
        connections
    );

    // Phase 1: one executor thread, a full batch of connections in
    // flight at once. `drive_all` interleaves the acquire futures'
    // polls — suspended acquires coexist on one stack, and every
    // connection still gets a distinct seat.
    let handler = |id: usize| {
        let service = &service;
        async move {
            let seat = service.acquire().await.expect("within capacity");
            (id, seat)
        }
    };
    let mut seats: Vec<(usize, AsyncNameGuard)> = exec::drive_all((0..connections).map(handler));
    seats.sort_by_key(|(_, seat)| seat.value());
    println!("\nconnection -> seat (all live at once, one executor thread)");
    for (id, seat) in &seats {
        println!("  conn {id:>2} -> seat {seat}");
    }
    assert_eq!(service.held(), connections);

    // Connections hang up: dropping the guard recycles the seat.
    seats.clear();
    assert_eq!(service.held(), 0);
    println!("\nall connections closed; every seat recycled");

    // Phase 2: several executor threads, churning connections. Guards
    // are `'static` (they hold an `Arc` to the service), so a seat can
    // migrate to whichever thread finishes the connection.
    let threads = 4;
    let per_thread = 50;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let service = &service;
            scope.spawn(move || {
                for _ in 0..per_thread {
                    let seat = exec::block_on(service.acquire()).expect("within capacity");
                    assert!(seat.value() < service.namespace_size());
                    // ... serve the connection, then hang up ...
                    drop(seat);
                }
            });
        }
    });
    assert_eq!(service.held(), 0);
    println!(
        "churned {} connections across {threads} executor threads through {} seats; \
         table empty again",
        threads * per_thread,
        service.namespace_size()
    );
    Ok(())
}
