//! Step-complexity measurement under adversarial schedulers.
//!
//! The simulator runs the exact same ReBatching state machines that the
//! threaded implementation drives, but schedules every shared-memory step
//! through an adversary — including the *strong* ones that inspect coin
//! flips (§2 of the paper). This example prints the measured step
//! complexity per adversary.
//!
//! ```text
//! cargo run --release --example adversarial_schedules
//! ```

use std::sync::Arc;

use loose_renaming::core::{BatchLayout, ProbeSchedule, RebatchingMachine};
use loose_renaming::prelude::*;
use loose_renaming::sim::adversary::all_strategies;
use loose_renaming::sim::{Execution, Renamer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    let schedule = ProbeSchedule::paper(Epsilon::one(), 3)?;
    let layout = BatchLayout::shared(n, schedule)?;
    println!(
        "n = {n}, namespace = {}, probe budget = t0 + (kappa-1) + beta = {}\n",
        layout.namespace_size(),
        layout.max_probes()
    );
    println!("{:<22} {:>9} {:>10} {:>8} {:>7}", "adversary", "max steps", "mean steps", "layers", "backup");
    println!("{}", "-".repeat(62));
    for adversary in all_strategies() {
        let label = adversary.label();
        let machines: Vec<Box<dyn Renamer>> = (0..n)
            .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(layout.namespace_size())
            .adversary(adversary)
            .seed(7)
            .run(machines)?;
        assert_eq!(report.named_count(), n, "{label}: everyone must finish");
        println!(
            "{:<22} {:>9} {:>10.2} {:>8} {:>7}",
            label,
            report.max_steps(),
            report.mean_steps(),
            report
                .layers
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            report.backup_entries(),
        );
    }
    println!(
        "\neven the collision-seeking and starving adversaries cannot push any process\n\
         past the probe budget — that is Theorem 4.1 at work."
    );

    // The very same machines power the concurrent front-end: what the
    // simulator schedules step-by-step above, `NameService` drives against
    // real atomics below.
    let service = NameService::builder(Algorithm::Rebatching, n)
        .seed_policy(SeedPolicy::Fixed(7))
        .build()?;
    let guard = service.acquire()?;
    println!(
        "(same machines, real hardware: NameService handed this thread name {} of {})",
        guard.value(),
        service.namespace_size()
    );
    Ok(())
}
