//! A tour of the §6 lower bound as executable mathematics.
//!
//! Four views of "any TAS-based loose renaming needs Ω(log log n) steps":
//!
//! 1. the coupling gadget of Lemma 6.5 (cdf domination, checked on a grid);
//! 2. the exact rate recurrence — layers until the surviving rate drops
//!    below a constant grow like lg lg n;
//! 3. the Monte-Carlo marking simulation of the layered execution, whose
//!    realized survivor counts track the analytic rates;
//! 4. the matching upper bound, *measured*: a `NameService` over
//!    operation-counting TAS slots reports real steps per acquire.
//!
//! ```text
//! cargo run --release --example lower_bound_tour
//! ```

use std::sync::Arc;

use loose_renaming::core::{BatchLayout, Epsilon, ProbeSchedule, Rebatching};
use loose_renaming::lowerbound::types::uniform_types;
use loose_renaming::lowerbound::{
    predicted_layers, run_marking, uniform_extinction_layers, verify_lemma_6_5, CoupledPoisson,
    MarkingConfig,
};
use loose_renaming::service::{NameService, SeedPolicy, ServiceBackend};
use loose_renaming::tas::{CountingTas, TasArray};

/// Acquire `n` names through a counting-TAS service and report the mean
/// and max hardware TAS operations per acquire.
fn measured_steps_per_acquire(n: usize) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let schedule = ProbeSchedule::paper(Epsilon::one(), 3)?;
    let layout = BatchLayout::shared(n, schedule)?;
    let slots = Arc::new(TasArray::from_slots(
        (0..layout.namespace_size())
            .map(|_| CountingTas::new(loose_renaming::tas::AtomicTas::new()))
            .collect(),
    ));
    let object = Rebatching::from_parts(layout, Arc::clone(&slots))?;
    let backend: Arc<dyn ServiceBackend> = Arc::new(object);
    let service = NameService::with_backend(backend, SeedPolicy::Fixed(9));
    let mut per_acquire = Vec::with_capacity(n);
    let mut last_total: u64 = 0;
    let mut guards = Vec::with_capacity(n);
    for _ in 0..n {
        guards.push(service.acquire()?);
        let total: u64 = (0..slots.len()).map(|i| slots.slot(i).tas_ops()).sum();
        per_acquire.push(total - last_total);
        last_total = total;
    }
    let mean = last_total as f64 / n as f64;
    let max = per_acquire.iter().copied().max().unwrap_or(0);
    Ok((mean, max))
}

fn main() {
    // 1. Lemma 6.5 on a grid.
    let lambdas = [0.05, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 256.0];
    let worst = verify_lemma_6_5(&lambdas, 512);
    println!("Lemma 6.5  P_l(n+1) <= P_g(n): worst margin over the grid = {worst:.3e}");
    let c = CoupledPoisson::new(2.0);
    println!(
        "           e.g. lambda = 2 couples with gamma = {} (= min(l^2/4, l/4))\n",
        c.gamma()
    );

    // 2. The rate recurrence.
    println!("Theorem 6.1 skeleton: layers until the surviving rate < 4 (lambda0 = n/2, s = 2n)");
    println!("  {:>6}  {:>7}  {:>10}", "n", "layers", "lg lg n");
    for e in [8u32, 12, 16, 24, 32, 48] {
        let n = 1u64 << e;
        let layers = uniform_extinction_layers(n as f64 / 2.0, 2 * n as usize, 4.0, 128);
        println!("  2^{e:<4}  {layers:>7}  {:>10.2}", (e as f64).log2());
    }
    println!("  (each doubling of the exponent adds ~1 layer: the lg lg n signature)\n");

    // 3. Monte-Carlo marking.
    let n = 1 << 14;
    let s = 2 * n;
    let types = uniform_types(2 * n, s, 10, 1);
    let outcomes = run_marking(
        MarkingConfig {
            n,
            s,
            layers: 10,
            seed: 2,
        },
        &types,
    );
    println!("Marking simulation, n = {n}: marked survivors vs the analytic rate");
    println!("  {:>5}  {:>10}  {:>12}", "layer", "marked", "lambda");
    for o in &outcomes {
        println!("  {:>5}  {:>10}  {:>12.2}", o.layer, o.marked, o.lambda);
    }
    println!(
        "\npredicted survival floor: layer {} — processes remain unnamed at least that long,\n\
         matching the paper's Omega(log log n) lower bound.",
        predicted_layers(n as f64 / 2.0, s)
    );

    // 4. The matching upper bound, measured on hardware: ReBatching through
    // a NameService over counting TAS slots.
    println!("\nUpper bound, measured (NameService over counting TAS, n sequential acquires):");
    println!("  {:>6}  {:>12}  {:>14}  {:>8}", "n", "mean TAS ops", "max TAS ops", "lg lg n");
    for e in [8u32, 10, 12] {
        let n = 1usize << e;
        let (mean, max) = measured_steps_per_acquire(n).expect("measured run");
        println!(
            "  2^{e:<4}  {mean:>12.2}  {max:>14}  {:>8.2}",
            (e as f64).log2()
        );
    }
    println!(
        "  (the gap between Omega(log log n) below and these counts above is the\n\
         paper's whole story: both sides live at lg lg n scale)"
    );
}
