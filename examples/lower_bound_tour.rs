//! A tour of the §6 lower bound as executable mathematics.
//!
//! Three views of "any TAS-based loose renaming needs Ω(log log n) steps":
//!
//! 1. the coupling gadget of Lemma 6.5 (cdf domination, checked on a grid);
//! 2. the exact rate recurrence — layers until the surviving rate drops
//!    below a constant grow like lg lg n;
//! 3. the Monte-Carlo marking simulation of the layered execution, whose
//!    realized survivor counts track the analytic rates.
//!
//! ```text
//! cargo run --release --example lower_bound_tour
//! ```

use loose_renaming::lowerbound::types::uniform_types;
use loose_renaming::lowerbound::{
    predicted_layers, run_marking, uniform_extinction_layers, verify_lemma_6_5, CoupledPoisson,
    MarkingConfig,
};

fn main() {
    // 1. Lemma 6.5 on a grid.
    let lambdas = [0.05, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 256.0];
    let worst = verify_lemma_6_5(&lambdas, 512);
    println!("Lemma 6.5  P_l(n+1) <= P_g(n): worst margin over the grid = {worst:.3e}");
    let c = CoupledPoisson::new(2.0);
    println!(
        "           e.g. lambda = 2 couples with gamma = {} (= min(l^2/4, l/4))\n",
        c.gamma()
    );

    // 2. The rate recurrence.
    println!("Theorem 6.1 skeleton: layers until the surviving rate < 4 (lambda0 = n/2, s = 2n)");
    println!("  {:>6}  {:>7}  {:>10}", "n", "layers", "lg lg n");
    for e in [8u32, 12, 16, 24, 32, 48] {
        let n = 1u64 << e;
        let layers = uniform_extinction_layers(n as f64 / 2.0, 2 * n as usize, 4.0, 128);
        println!("  2^{e:<4}  {layers:>7}  {:>10.2}", (e as f64).log2());
    }
    println!("  (each doubling of the exponent adds ~1 layer: the lg lg n signature)\n");

    // 3. Monte-Carlo marking.
    let n = 1 << 14;
    let s = 2 * n;
    let types = uniform_types(2 * n, s, 10, 1);
    let outcomes = run_marking(
        MarkingConfig {
            n,
            s,
            layers: 10,
            seed: 2,
        },
        &types,
    );
    println!("Marking simulation, n = {n}: marked survivors vs the analytic rate");
    println!("  {:>5}  {:>10}  {:>12}", "layer", "marked", "lambda");
    for o in &outcomes {
        println!("  {:>5}  {:>10}  {:>12.2}", o.layer, o.marked, o.lambda);
    }
    println!(
        "\npredicted survival floor: layer {} — processes remain unnamed at least that long,\n\
         matching the paper's Omega(log log n) lower bound.",
        predicted_layers(n as f64 / 2.0, s)
    );
}
