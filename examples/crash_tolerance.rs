//! Fail-stop crash tolerance: survivors always rename, uniquely.
//!
//! The paper's model allows *any* number of crashes (§2). This example
//! crashes half the processes at random points of the execution and shows
//! the survivors still obtain unique names within the probe budget.
//!
//! ```text
//! cargo run --release --example crash_tolerance
//! ```

use std::sync::Arc;

use loose_renaming::core::{BatchLayout, ProbeSchedule, RebatchingMachine};
use loose_renaming::prelude::*;
use loose_renaming::sim::adversary::UniformRandom;
use loose_renaming::sim::{CrashPlan, Execution, Renamer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let layout = BatchLayout::shared(n, ProbeSchedule::paper(Epsilon::one(), 3)?)?;
    println!("n = {n}, namespace = {}\n", layout.namespace_size());
    println!(
        "{:>15} {:>9} {:>7} {:>10} {:>7}",
        "crash fraction", "crashed", "named", "max steps", "unique"
    );
    println!("{}", "-".repeat(55));
    for fraction in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let plan = CrashPlan::random_fraction(n, fraction, n as u64, 99);
        let machines: Vec<Box<dyn Renamer>> = (0..n)
            .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(layout.namespace_size())
            .adversary(Box::new(UniformRandom::new()))
            .crash_plan(plan)
            .seed(5)
            .run(machines)?;
        let unique = report.names_within(layout.namespace_size()).is_ok();
        println!(
            "{:>15.2} {:>9} {:>7} {:>10} {:>7}",
            fraction,
            report.crashed_count(),
            report.named_count(),
            report.max_steps(),
            if unique { "yes" } else { "NO" },
        );
        assert_eq!(report.named_count() + report.crashed_count(), n);
        assert_eq!(report.stuck_count(), 0);
    }
    println!("\ncrashed processes stop mid-protocol; nobody inherits or duplicates their names.");

    // The concurrent analogue of a crash is a thread that acquires and
    // never releases: `NameGuard::into_name` leaks the slot exactly like a
    // crashed holder would, and the survivors keep renaming around it.
    let service = NameService::builder(Algorithm::Rebatching, 8)
        .seed_policy(SeedPolicy::Fixed(3))
        .build()?;
    let crashed = service.acquire()?.into_name(); // never released
    for _ in 0..20 {
        let survivor = service.acquire()?;
        assert_ne!(survivor.value(), crashed.value());
    }
    assert_eq!(service.held(), 1, "only the 'crashed' slot stays taken");
    println!(
        "(service analogue: a leaked guard pins name {crashed}; 20 later acquisitions \
         renamed around it)"
    );
    Ok(())
}
