//! Long-lived renaming (§7 extension): names are acquired, used, released
//! and recycled — through RAII [`NameGuard`]s.
//!
//! A worker pool where at most `n` workers are active simultaneously, but
//! workers come and go: each activation holds a guard on a dense slot id
//! and recycles it by dropping. The `(1+ε)n` namespace is reused
//! indefinitely.
//!
//! ```text
//! cargo run --release --example long_lived_slots
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use loose_renaming::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_active = 8;
    let service = NameService::builder(Algorithm::Rebatching, max_active)
        .seed_policy(SeedPolicy::Fixed(1))
        .build()?;
    let sessions_per_worker = 100;
    let peak_held = AtomicUsize::new(0);
    let held_now = AtomicUsize::new(0);

    let distinct_per_worker: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..max_active)
            .map(|_| {
                let (service, peak, held) = (&service, &peak_held, &held_now);
                scope.spawn(move || {
                    let mut slots_seen = std::collections::HashSet::new();
                    for _ in 0..sessions_per_worker {
                        // Activate: acquire a slot.
                        let guard = service.acquire().expect("within capacity");
                        let now = held.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        slots_seen.insert(guard.value());
                        // ... do work under the dense id ...
                        std::hint::spin_loop();
                        // Deactivate: dropping the guard recycles the slot.
                        held.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                    }
                    slots_seen.len()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    println!(
        "{} workers x {} sessions each, namespace {} slots",
        max_active,
        sessions_per_worker,
        service.namespace_size()
    );
    println!(
        "peak concurrently-held slots: {} (bound {})",
        peak_held.load(Ordering::SeqCst),
        max_active
    );
    for (w, distinct) in distinct_per_worker.iter().enumerate() {
        println!("  worker {w}: saw {distinct} distinct slot ids over its sessions");
    }
    assert_eq!(service.held(), 0, "everything released");
    println!(
        "\nall {} acquisitions stayed unique-while-held; all slots recycled by guard drop",
        max_active * sessions_per_worker
    );
    Ok(())
}
