//! Long-lived renaming (§7 extension): names are acquired, used, released
//! and recycled.
//!
//! A worker pool where at most `n` workers are active simultaneously, but
//! workers come and go: each activation acquires a dense slot id and
//! releases it on exit. The `(1+ε)n` namespace is reused indefinitely.
//!
//! ```text
//! cargo run --release --example long_lived_slots
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use loose_renaming::core::{Epsilon, Rebatching};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_active = 8;
    let object = Arc::new(Rebatching::with_defaults(max_active, Epsilon::one())?);
    let sessions_per_worker = 100;
    let peak_held = Arc::new(AtomicUsize::new(0));
    let held_now = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..max_active)
        .map(|w| {
            let object = Arc::clone(&object);
            let peak = Arc::clone(&peak_held);
            let held = Arc::clone(&held_now);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(w as u64);
                let mut slots_seen = std::collections::HashSet::new();
                for _ in 0..sessions_per_worker {
                    // Activate: acquire a slot.
                    let name = object.get_name(&mut rng).expect("within capacity");
                    let now = held.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    slots_seen.insert(name.value());
                    // ... do work under the dense id ...
                    std::hint::spin_loop();
                    // Deactivate: recycle the slot.
                    held.fetch_sub(1, Ordering::SeqCst);
                    object.release_name(name);
                }
                slots_seen.len()
            })
        })
        .collect();

    let distinct_per_worker: Vec<usize> = handles
        .into_iter()
        .map(|h| h.join().expect("worker panicked"))
        .collect();

    println!(
        "{} workers x {} sessions each, namespace {} slots",
        max_active,
        sessions_per_worker,
        object.namespace_size()
    );
    println!(
        "peak concurrently-held slots: {} (bound {})",
        peak_held.load(Ordering::SeqCst),
        max_active
    );
    for (w, distinct) in distinct_per_worker.iter().enumerate() {
        println!("  worker {w}: saw {distinct} distinct slot ids over its sessions");
    }
    assert_eq!(object.slots().set_count(), 0, "everything released");
    println!("\nall {} acquisitions stayed unique-while-held; all slots recycled", max_active * sessions_per_worker);
    Ok(())
}
