//! Vendored subset of `crossbeam-utils`: [`CachePadded`] and
//! [`thread::scope`].

use std::fmt;
use std::ops::{Deref, DerefMut};

pub mod thread {
    //! Scoped threads, API-compatible with `crossbeam_utils::thread`.
    //!
    //! The real crate predates `std::thread::scope`; this vendored subset
    //! keeps crossbeam's surface (`scope(|s| { s.spawn(|_| ...) })`, a
    //! `Result`-returning `scope`, spawn closures receiving the scope so
    //! they can spawn further threads) but delegates to the standard
    //! library's scoped threads underneath.

    /// A scope for spawning threads that borrow from the enclosing stack
    /// frame (`'env`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl std::fmt::Debug for Scope<'_, '_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Scope").finish_non_exhaustive()
        }
    }

    /// Handle to a thread spawned in a [`Scope`].
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope; every thread spawned in it is joined before
    /// `scope` returns. Unlike `std::thread::scope`, mirrors crossbeam by
    /// returning a `Result` (always `Ok` here — std propagates child
    /// panics on join instead).
    ///
    /// # Errors
    ///
    /// Never fails in this vendored implementation; the `Result` exists
    /// for crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let sum: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|&v| s.spawn(move |_| v * 10))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("join"))
                    .sum()
            })
            .expect("scope");
            assert_eq!(sum, 100);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let result = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().expect("inner"))
                    .join()
                    .expect("outer")
            })
            .expect("scope");
            assert_eq!(result, 7);
        }
    }
}

/// Pads and aligns a value to 128 bytes so that adjacent values never share
/// a cache line (128 covers the common 64-byte line plus adjacent-line
/// prefetchers on x86_64 and the 128-byte lines on aarch64).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7usize);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(p.into_inner(), 9);
    }
}
