//! Vendored subset of `crossbeam-utils`: just [`CachePadded`].

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that adjacent values never share
/// a cache line (128 covers the common 64-byte line plus adjacent-line
/// prefetchers on x86_64 and the 128-byte lines on aarch64).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7usize);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(p.into_inner(), 9);
    }
}
