//! Vendored, API-compatible subset of `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the `proptest!`
//! macro with `arg in strategy` bindings and `#![proptest_config(...)]`,
//! range and `any::<T>()` strategies, `prop_map`, `prop_oneof!`, and the
//! `prop::collection::{vec, hash_set}` combinators.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce), and
//! there is no shrinking — a failing case panics with the assert message
//! directly.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving input sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            func,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.sample_value(rng))
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample_value(rng), self.1.sample_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample_value(rng),
            self.1.sample_value(rng),
            self.2.sample_value(rng),
        )
    }
}

/// Types with a default whole-domain strategy ([`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A boxed sampling branch of a [`Union`].
pub type UnionBranch<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Heterogeneous union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<UnionBranch<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("branches", &self.branches.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Wraps pre-boxed branch samplers.
    pub fn new(branches: Vec<UnionBranch<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Self { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.branches.len() as u64) as usize;
        (self.branches[idx])(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample_value(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; duplicates shrink the set below
    /// the drawn size, as in upstream proptest.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of elements drawn from `element`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample_value(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

// Re-exports so unqualified names in `use proptest::prelude::*` code work.
pub use collection::{HashSetStrategy, VecStrategy};

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Builds a [`Union`] strategy choosing uniformly among the branches.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let s = $strategy;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample_value(&s, rng)
                })
            }),+
        ])
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest_body! { cfg = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_body! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_body {
    (cfg = ($config:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// The `proptest::prelude` glob the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::sample_value(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::Strategy::sample_value(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(a in 0usize..10, b in any::<u8>(), pair in (0u32..4, 0u32..4)) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn collections_and_oneof(v in prop::collection::vec(prop_oneof![0usize..4, 10usize..14], 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 4 || (10..14).contains(&x)));
        }
    }
}
