//! Vendored, API-compatible subset of `serde`.
//!
//! This environment has no crates.io access, so the workspace ships a
//! minimal serialization framework with the same public surface the code
//! uses: the [`Serialize`] / [`Deserialize`] traits, their derive macros
//! (re-exported from the vendored `serde_derive`), and a JSON-shaped
//! [`Value`] data model shared with the vendored `serde_json`.
//!
//! The design collapses serde's format-generic architecture to a single
//! data model: `Serialize` produces a [`Value`], `Deserialize` consumes
//! one. The `serde_json` companion handles text.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON number: integers keep their integer identity through
/// serialization round trips, floats stay floats.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite floating-point number.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl Number {
    /// The number as an `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep the float identity visible ("3.0", not "3") so a
                    // round trip restores the same Number variant.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- implementations for primitives and std containers ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::PosInt(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range"))),
                    other => Err(Error::msg(format!("expected unsigned integer, got {other}"))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(Number::PosInt(n)) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range")))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    other => return Err(Error::msg(format!("expected integer, got {other}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // JSON has no NaN/inf; serde_json serializes them as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::msg(format!("expected number, got {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, got {other}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-tuple, got {other}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- helpers used by the derive macro's generated code ----

/// Extracts the field map from an object value (derive-internal).
#[doc(hidden)]
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        other => Err(Error::msg(format!("expected {ty} object, got {other}"))),
    }
}

/// Looks up a required field (derive-internal).
#[doc(hidden)]
pub fn expect_field<'a>(
    pairs: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}` in {ty}")))
}
