//! Derive macros for the vendored `serde` subset.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline). Supports the shapes this workspace uses:
//!
//! * named-field structs,
//! * tuple structs (single-field structs serialize transparently, like
//!   serde newtypes; larger tuples serialize as arrays),
//! * enums with unit, named-field and tuple variants (externally tagged,
//!   matching serde's default representation).
//!
//! Generics are not supported — no derived type in this workspace is
//! generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips attribute pairs (`#` + bracket group) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                _ => return i,
            },
            _ => return i,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    // Reject generics explicitly rather than mis-deriving.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) on generic types is not supported offline");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Splits a token list on top-level commas, tracking angle-bracket depth so
/// commas inside `Map<K, V>`-style generics don't split fields.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter_map(|chunk| {
            let mut i = skip_attrs(&chunk, 0);
            i = skip_vis(&chunk, i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|c| !c.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter_map(|chunk| {
            let i = skip_attrs(&chunk, 0);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let shape = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => VariantShape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(vec![{pairs}]))]),"
                            )
                        }
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let bind_list = binds.join(", ");
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({bind_list}) => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::expect_field(pairs, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let pairs = ::serde::expect_object(v, \"{name}\")?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => Ok({name}({inits})),\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"expected {n}-element array for {name}, got {{other}}\"))),\n\
                 }}"
            )
        }
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("::serde::Value::String(s) if s == \"{vn}\" => Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::expect_field(fields, \"{f}\", \
                                         \"{name}::{vn}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let fields = ::serde::expect_object(inner, \"{name}::{vn}\")?;\n\
                                 Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                        VariantShape::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                 Ok({name}::{vn}({inits})),\n\
                                 other => Err(::serde::Error::msg(format!(\
                                 \"bad payload for {name}::{vn}: {{other}}\"))),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 {unit_arms}\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"expected {name}, got {{other}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
}
