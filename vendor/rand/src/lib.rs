//! Vendored, API-compatible subset of the `rand` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! ships the small slice of `rand`'s API it actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a ChaCha12 generator, mirroring upstream's choice
//!   of a cryptographically strong (and deliberately not cheap) default,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates,
//! * [`thread_rng`] — a time-seeded generator for tests.
//!
//! Semantics match upstream `rand 0.8` (uniform, unbiased sampling); exact
//! output streams are not guaranteed to match upstream bit-for-bit, which
//! is fine because every consumer in this workspace derives determinism
//! from its own seeds, not from upstream's stream definition.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled "from the standard distribution" via
/// [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased bounded sampling in `[0, n)` by widening multiply with
/// rejection (Lemire 2019).
#[inline]
pub fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sampling range");
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let t = n.wrapping_neg() % n;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — the standard seed expander.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generator types.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: ChaCha with 12 rounds, matching upstream
    /// `rand`'s `StdRng` choice (strong, deliberately not the cheapest).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u32; 16],
        buf: [u32; 16],
        idx: usize,
    }

    const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    impl StdRng {
        fn from_key(key: [u32; 8]) -> Self {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CHACHA_CONST);
            state[4..12].copy_from_slice(&key);
            // state[12..16]: 64-bit counter + 64-bit stream id, all zero.
            Self {
                state,
                buf: [0; 16],
                idx: 16,
            }
        }

        #[inline]
        fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(16);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(12);
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(8);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(7);
        }

        fn refill(&mut self) {
            let mut working = self.state;
            for _ in 0..6 {
                // Two rounds per iteration: column then diagonal.
                Self::quarter(&mut working, 0, 4, 8, 12);
                Self::quarter(&mut working, 1, 5, 9, 13);
                Self::quarter(&mut working, 2, 6, 10, 14);
                Self::quarter(&mut working, 3, 7, 11, 15);
                Self::quarter(&mut working, 0, 5, 10, 15);
                Self::quarter(&mut working, 1, 6, 11, 12);
                Self::quarter(&mut working, 2, 7, 8, 13);
                Self::quarter(&mut working, 3, 4, 9, 14);
            }
            for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
                *out = w.wrapping_add(s);
            }
            // Increment the 64-bit block counter.
            let (lo, carry) = self.state[12].overflowing_add(1);
            self.state[12] = lo;
            if carry {
                self.state[13] = self.state[13].wrapping_add(1);
            }
            self.idx = 0;
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.idx >= 16 {
                self.refill();
            }
            let v = self.buf[self.idx];
            self.idx += 1;
            v
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let mut key = [0u32; 8];
            for pair in key.chunks_exact_mut(2) {
                let w = splitmix64(&mut s);
                pair[0] = w as u32;
                pair[1] = (w >> 32) as u32;
            }
            Self::from_key(key)
        }
    }
}

/// A time-seeded generator handle (the vendored stand-in for upstream's
/// thread-local generator).
#[derive(Debug, Clone)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns a generator seeded from the system clock and a process-wide
/// counter (unique per call; not cryptographically secure).
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    ThreadRng(rngs::StdRng::seed_from_u64(
        nanos ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    ))
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_supports_extension_methods() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10usize);
        assert!(v < 10);
        let b: bool = dyn_rng.gen();
        let _ = b;
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
