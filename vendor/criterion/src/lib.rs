//! Vendored, API-compatible subset of `criterion`.
//!
//! Provides the harness surface the workspace benches use (`Criterion`,
//! benchmark groups, `BenchmarkId`, `b.iter`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple time-per-iteration measurement
//! loop instead of criterion's full statistical machinery. Good enough to
//! compare orders of magnitude offline; not a statistics suite.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Self {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target,
        }
    }

    /// Times repeated calls of `f` until the measurement target is hit.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call (also primes lazy state).
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.target || iters >= 1_000_000 {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done == 0 {
        println!("bench {name:<50} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    println!(
        "bench {name:<50} {per_iter:>14.1} ns/iter ({} iters)",
        b.iters_done
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Short target: keep offline `cargo bench` runs quick.
            target: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b);
        report(&id.name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simplified loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the simplified loop ignores it.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.target);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.target);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
