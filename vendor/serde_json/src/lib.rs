//! Vendored, API-compatible subset of `serde_json`, sharing the vendored
//! `serde`'s [`Value`] data model: [`to_string`], [`from_str`], the
//! [`json!`] macro, and an [`Error`] type that converts into
//! `std::io::Error`.

pub use serde::{Number, Value};

use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// The vendored data model is total, so this currently never fails; the
/// `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Converts `value` into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses a JSON string into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a `T` out of a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v).map_err(Error::from)
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::msg(format!("expected `{lit}` at byte {}", *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::msg("bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(Error::msg(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::msg("bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(v) = stripped.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(-v)));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error::msg(format!("malformed number `{text}`")))
}

/// Converts a `Serialize` value (derive-macro-internal plumbing for
/// [`json!`]).
#[doc(hidden)]
pub fn value_of<T: serde::Serialize>(v: T) -> Value {
    v.to_value()
}

/// Builds a [`Value`] from a JSON-shaped literal. Keys must be string
/// literals; values may be any `Serialize` expression, `null`, a nested
/// `{...}` object literal, or a `[...]` array literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => { $crate::json_object!(() $($body)*) };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::value_of($item) ),* ])
    };
    ($other:expr) => { $crate::value_of($other) };
}

/// Internal tt-muncher for [`json!`] object bodies: accumulates finished
/// `(key, value)` pairs in the leading parenthesized group, peeling one
/// `key: value` entry per step so values may be full expressions or nested
/// literals.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Terminal states.
    (($($out:tt)*)) => { $crate::Value::Object(vec![$($out)*]) };
    (($($out:tt)*) ,) => { $crate::Value::Object(vec![$($out)*]) };
    // Nested object literal value.
    (($($out:tt)*) $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::json!({ $($inner)* })),) $($rest)*)
    };
    (($($out:tt)*) $key:literal : { $($inner:tt)* }) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::json!({ $($inner)* })),))
    };
    // Nested array literal value.
    (($($out:tt)*) $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::json!([ $($inner)* ])),) $($rest)*)
    };
    (($($out:tt)*) $key:literal : [ $($inner:tt)* ]) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::json!([ $($inner)* ])),))
    };
    // `null` value.
    (($($out:tt)*) $key:literal : null , $($rest:tt)*) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::Value::Null),) $($rest)*)
    };
    (($($out:tt)*) $key:literal : null) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::Value::Null),))
    };
    // General expression value.
    (($($out:tt)*) $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::value_of($value)),) $($rest)*)
    };
    (($($out:tt)*) $key:literal : $value:expr) => {
        $crate::json_object!(($($out)* ($key.to_string(), $crate::value_of($value)),))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "4.5", "\"hi\\nthere\""] {
            let v: Value = from_str(text).expect("parse");
            let back = to_string(&v).expect("serialize");
            let v2: Value = from_str(&back).expect("reparse");
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn integers_stay_integers_floats_stay_floats() {
        let v: Value = from_str("3").unwrap();
        assert_eq!(v, Value::Number(Number::PosInt(3)));
        let v: Value = from_str("3.0").unwrap();
        assert_eq!(v, Value::Number(Number::Float(3.0)));
        assert_eq!(to_string(&v).unwrap(), "3.0");
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"n": 8, "label": "x", "nested": {"k": 1}, "arr": [1, 2]});
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(8));
        assert_eq!(v.get("label").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("k")).and_then(Value::as_u64),
            Some(1)
        );
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).expect("reparse");
        assert_eq!(v, back);
    }

    #[test]
    fn object_roundtrip_preserves_order_and_kind() {
        let text = "{\"a\":1,\"b\":2.5,\"c\":[true,null]}";
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
