//! End-to-end tests for the async acquire facade (`AsyncNameService`).
//!
//! Four guarantees under test, mirroring `service_api.rs` on the sync
//! side:
//!
//! 1. **Golden equality** — a single-task `acquire().await` sequence
//!    under a fixed seed is byte-identical to the sync combining (and
//!    hence direct) sequence, on every backend: the async facade is a
//!    suspension shape, not a different algorithm.
//! 2. **Executor churn** — OS threads each driving `block_on` acquires
//!    hold unique names at every instant — proved by the concurrency
//!    oracle's vector-clock history checker, with consistent snapshot
//!    cuts taken mid-churn — and recycle them all, on all seven
//!    backends and on the register-based tournament substrate.
//! 3. **Cancellation safety** — futures dropped mid-flight (published
//!    but unserved, or served but unconsumed) leak neither request
//!    slots nor names: occupancy drains to zero and the worker
//!    conservation law holds after a churn full of cancellations.
//! 4. **Single-thread interleaving** — `drive_all` multiplexing a batch
//!    of acquires on one thread resolves them all to distinct names
//!    (the cooperative-scheduling shape, closest to the paper's
//!    arbitrarily-delayed asynchronous processes).

use std::future::Future;
use std::task::Context;

use loose_renaming::prelude::*;
use loose_renaming::service::exec;

/// Builds a combining-mode service wrapped for async acquisition. The
/// concurrency oracle records every acquire/release; recording does not
/// touch the RNG streams, so the fixed-seed goldens below are
/// unaffected.
fn async_service(algorithm: Algorithm, capacity: usize, seed: u64) -> AsyncNameService {
    AsyncNameService::new(
        NameService::builder(algorithm, capacity)
            .acquire_mode(AcquireMode::Combining)
            .oracle(true)
            .seed_policy(SeedPolicy::Fixed(seed))
            .build()
            .expect("build"),
    )
}

/// The mixed hold/release single-thread workload from `service_api.rs`,
/// driven synchronously through the requested acquire mode.
fn sync_sequence(algorithm: Algorithm, seed: u64, n: usize, mode: AcquireMode) -> Vec<usize> {
    let service = NameService::builder(algorithm, 32)
        .acquire_mode(mode)
        .seed_policy(SeedPolicy::Fixed(seed))
        .build()
        .expect("build");
    let mut values = Vec::new();
    let mut held = Vec::new();
    for i in 0..n {
        let guard = service.acquire().expect("within capacity");
        values.push(guard.value());
        if i % 3 == 0 {
            held.push(guard);
        } else {
            drop(guard);
        }
        if held.len() > 8 {
            held.clear();
        }
    }
    values
}

/// The same workload, acquired through `block_on(service.acquire())`.
fn async_sequence(algorithm: Algorithm, seed: u64, n: usize) -> Vec<usize> {
    let service = async_service(algorithm, 32, seed);
    let mut values = Vec::new();
    let mut held = Vec::new();
    for i in 0..n {
        let guard = exec::block_on(service.acquire()).expect("within capacity");
        values.push(guard.value());
        if i % 3 == 0 {
            held.push(guard);
        } else {
            drop(guard);
        }
        if held.len() > 8 {
            held.clear();
        }
    }
    drop(held);
    assert_eq!(service.held(), 0, "dropping the held guards drains the service");
    values
}

/// A single async task forms batches of one through the combiner's
/// uncontended fast path, so its fixed-seed sequence must reproduce the
/// sync combining sequence exactly — on every backend. (Sync combining
/// is itself pinned against the PR 3 direct-mode goldens in
/// `service_api.rs`, so this transitively pins async against those too.)
#[test]
fn async_fixed_seed_sequences_match_sync_combining_on_every_backend() {
    for algorithm in Algorithm::all() {
        assert_eq!(
            async_sequence(algorithm, 0xD0C5, 24),
            sync_sequence(algorithm, 0xD0C5, 24, AcquireMode::Combining),
            "{algorithm:?}: acquire().await diverged from sync combining"
        );
    }
}

/// Belt and braces: pin the async Rebatching sequence against the PR 3
/// golden values directly, not just transitively.
#[test]
fn async_rebatching_matches_the_pr3_golden_sequence() {
    let golden = [
        9, 20, 21, 13, 29, 19, 0, 19, 29, 30, 18, 14, 17, 6, 21, 1, 4, 24, 24, 26, 3, 26, 29, 8,
    ];
    assert_eq!(async_sequence(Algorithm::Rebatching, 0xD0C5, golden.len()), golden);
}

/// Async churn under the concurrency oracle: `threads` OS threads each
/// drive `iterations` `block_on` acquires while the main thread takes
/// consistent snapshots; the post-run checker proves cross-thread
/// uniqueness over the whole history, full recycling, and worker
/// conservation in one verdict.
fn async_churn(service: &AsyncNameService, threads: usize, iterations: usize) {
    let oracle = service
        .service()
        .oracle()
        .expect("async churn services enable the oracle");

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..iterations {
                    let guard = exec::block_on(service.acquire()).expect("within capacity");
                    assert!(guard.value() < service.namespace_size());
                    std::hint::spin_loop();
                    drop(guard);
                }
            });
        }
        for _ in 0..2 {
            std::thread::yield_now();
            oracle.snapshot();
        }
    });

    let verdict = service.service().oracle_verdict().expect("oracle enabled");
    assert!(
        verdict.is_clean(),
        "oracle violations under async churn: {:?}",
        verdict.history.violations
    );
    assert!(verdict.drained(), "all names recycled after the churn");
    assert_eq!(verdict.history.wins, (threads * iterations) as u64);
    assert_eq!(verdict.history.released(), verdict.history.wins);
    for snapshot in &verdict.history.snapshots {
        assert!(snapshot.consistent, "inconsistent cut: {snapshot:?}");
        assert!(snapshot.live_at_cut <= service.capacity());
    }
    assert_eq!(service.held(), 0, "all names recycled after the churn");
    assert!(threads * iterations > 2 * service.namespace_size());
}

#[test]
fn async_churn_is_unique_and_recycles_on_every_backend() {
    for algorithm in Algorithm::all() {
        // Linear scan's optimal namespace contends hardest; keep its
        // churn shorter, like the sync suite does.
        let iterations = if algorithm == Algorithm::LinearScan { 50 } else { 100 };
        let threads = 8;
        let service = async_service(algorithm, threads, 0xA57C);
        async_churn(&service, threads, iterations);
    }
}

/// The register-based tournament substrate behind `acquire().await`:
/// batch sweeps drive epoch-stamped trees exactly like sync acquires.
#[test]
fn async_tournament_churn_is_unique_and_recycles() {
    let threads = 4;
    let service = AsyncNameService::new(
        NameService::builder(Algorithm::Rebatching, threads)
            .tas_backend(TasBackend::Tournament)
            .acquire_mode(AcquireMode::Combining)
            .oracle(true)
            .seed_policy(SeedPolicy::Fixed(0xA57D))
            .build()
            .expect("build"),
    );
    let iterations = (10 * service.namespace_size()).div_ceil(threads) + 5;
    async_churn(&service, threads, iterations);
}

/// Cancellation torture: threads interleave completed acquires with
/// futures that are polled once — far enough to publish into a request
/// slot under contention — and then dropped. Every cancellation must
/// either withdraw the request or recycle the won name; afterwards the
/// service must be fully drained, conservation must hold, and every
/// request slot must be claimable again.
#[test]
fn cancellation_under_churn_leaks_neither_slots_nor_names() {
    let threads = 8;
    let service = async_service(Algorithm::FastAdaptive, threads, 0xCA9C);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = &service;
            scope.spawn(move || {
                for i in 0..150 {
                    if (i + t) % 3 == 0 {
                        // Poll once, then drop mid-flight. Under
                        // contention the poll publishes and suspends;
                        // uncontended it completes and the guard drop
                        // releases — both paths must leave no residue.
                        let mut future = std::pin::pin!(service.acquire());
                        let waker = exec::test_waker();
                        let mut cx = Context::from_waker(&waker);
                        drop(future.as_mut().poll(&mut cx));
                    } else {
                        let guard =
                            exec::block_on(service.acquire()).expect("within capacity");
                        drop(guard);
                    }
                }
            });
        }
    });
    // The oracle's verdict subsumes the old hand-rolled conservation
    // asserts: a clean drained verdict means no overlapping holds, no
    // leaked names (every recorded win was released — adopted wins by
    // their cancelled requester, completed ones by the guard drop),
    // workers conserved, and history agreeing with the backend's
    // occupancy counter. Withdrawn futures record a start with no
    // outcome, which the checker tolerates by design.
    let verdict = service.service().oracle_verdict().expect("oracle enabled");
    assert!(
        verdict.is_clean(),
        "oracle violations under cancellation churn: {:?}",
        verdict.history.violations
    );
    assert!(verdict.drained(), "cancellations leaked names");
    assert_eq!(verdict.history.wins, verdict.history.released());
    assert!(verdict.history.starts >= verdict.history.wins + verdict.history.fails);
    assert_eq!(service.held(), 0, "cancellations leaked names");
    // The slot table must be whole: a full capacity's worth of fresh
    // concurrent acquires still succeeds.
    let guards: Vec<AsyncNameGuard> = (0..service.capacity())
        .map(|_| exec::block_on(service.acquire()).expect("slots all claimable"))
        .collect();
    drop(guards);
    assert_eq!(service.held(), 0);
}

/// One thread, many in-flight acquires: `drive_all` interleaves the
/// futures' polls, so suspended acquires coexist on a single stack —
/// the executor analogue of the paper's arbitrarily-delayed processes.
/// All resolved names must be distinct (they are held simultaneously).
#[test]
fn drive_all_resolves_a_full_batch_to_distinct_names() {
    let batch = 16;
    let service = async_service(Algorithm::Rebatching, batch, 0xD41E);
    let guards: Vec<AsyncNameGuard> = exec::drive_all((0..batch).map(|_| service.acquire()))
        .into_iter()
        .map(|result| result.expect("within capacity"))
        .collect();
    let mut values: Vec<usize> = guards.iter().map(AsyncNameGuard::value).collect();
    values.sort_unstable();
    let before = values.len();
    values.dedup();
    assert_eq!(values.len(), before, "duplicate names within one batch");
    assert_eq!(service.held(), batch);
    drop(guards);
    assert_eq!(service.held(), 0, "dropping every guard drains the service");
}

/// Guards are `'static` (they hold an `Arc` to the service): they can
/// outlive the `AsyncNameService` handle and cross threads, and their
/// release still lands.
#[test]
fn async_guards_outlive_the_handle_and_cross_threads() {
    let service = async_service(Algorithm::Rebatching, 4, 0x0DD);
    let probe = service.clone();
    let guard = exec::block_on(service.acquire()).expect("name");
    drop(service);
    let value = guard.value();
    std::thread::spawn(move || drop(guard)).join().expect("join");
    assert_eq!(probe.held(), 0, "cross-thread drop released name {value}");
}

/// Exhaustion surfaces through the future as the same structured error
/// the sync path returns — never a panic, and the namespace heals.
#[test]
fn async_exhaustion_is_an_error_not_a_panic() {
    let service = async_service(Algorithm::Rebatching, 2, 0xEE);
    let guards: Vec<AsyncNameGuard> = (0..service.namespace_size())
        .map(|_| exec::block_on(service.acquire()).expect("namespace not yet full"))
        .collect();
    let err = exec::block_on(service.acquire()).unwrap_err();
    assert_eq!(
        err,
        RenamingError::NamespaceExhausted {
            namespace: service.namespace_size()
        }
    );
    drop(guards);
    assert!(exec::block_on(service.acquire()).is_ok());
}
