//! "Test the tester": seeded-violation mutations for the concurrency
//! oracle. A checker that cannot fail is not a check — each test here
//! injects one specific safety violation (a backend that double-issues
//! a name, a release path that bypasses the oracle, a conservation-law
//! off-by-one) and asserts the checker flags it with the right
//! verdict, plus positive coverage for the consistent-snapshot path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use loose_renaming::prelude::*;
use loose_renaming::service::{PooledSession, ServiceBackend, SeedPolicy};
use rand::RngCore;
use renaming_core::RenamingError as CoreError;

/// A deliberately broken backend: every acquire returns name 0, so any
/// two concurrent (or even back-to-back unreleased) holders collide.
#[derive(Debug)]
struct DoubleIssuing {
    held: Arc<AtomicUsize>,
}

#[derive(Debug)]
struct FixedSession {
    held: Arc<AtomicUsize>,
}

impl PooledSession for FixedSession {
    fn acquire(&mut self, _rng: &mut dyn RngCore) -> Result<Name, CoreError> {
        self.held.fetch_add(1, Ordering::SeqCst);
        Ok(Name::new(0))
    }

    fn acquire_batch(
        &mut self,
        count: usize,
        rng: &mut dyn RngCore,
        out: &mut Vec<Name>,
    ) -> Result<(), CoreError> {
        for _ in 0..count {
            out.push(self.acquire(rng)?);
        }
        Ok(())
    }
}

impl Namespace for DoubleIssuing {
    fn acquire(&self, _rng: &mut dyn RngCore) -> Result<Name, CoreError> {
        self.held.fetch_add(1, Ordering::SeqCst);
        Ok(Name::new(0))
    }

    fn release(&self, _name: Name) -> Result<(), CoreError> {
        self.held.fetch_sub(1, Ordering::SeqCst);
        Ok(())
    }

    fn namespace_size(&self) -> usize {
        8
    }

    fn capacity(&self) -> usize {
        4
    }

    fn held(&self) -> usize {
        self.held.load(Ordering::SeqCst)
    }

    fn algorithm(&self) -> &'static str {
        "double-issuing"
    }

    fn supports_release(&self) -> bool {
        true
    }
}

impl ServiceBackend for DoubleIssuing {
    fn open_session(&self) -> Box<dyn PooledSession> {
        Box::new(FixedSession {
            held: Arc::clone(&self.held),
        })
    }
}

/// Mutation 1: a namespace that double-issues. The record-time holder
/// cell must flag the `DoubleIssue`, and the replay checker must also
/// call the two holds overlapping — two independent detections of the
/// same seeded bug.
#[test]
fn double_issuing_backend_is_flagged() {
    let backend = Arc::new(DoubleIssuing {
        held: Arc::new(AtomicUsize::new(0)),
    });
    let mut service = NameService::with_backend(backend, SeedPolicy::Fixed(1));
    service.enable_oracle();

    let first = service.acquire_name().expect("acquire");
    let second = service.acquire_name().expect("acquire");
    assert_eq!(first.value(), 0);
    assert_eq!(second.value(), 0, "the seeded bug double-issues name 0");

    let verdict = service.oracle_verdict().expect("oracle enabled");
    assert!(!verdict.is_clean(), "the checker must not bless a double issue");
    assert!(
        verdict
            .history
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleIssue { name: 0, .. })),
        "record-time holder cell missed the double issue: {:?}",
        verdict.history.violations
    );
    assert!(
        verdict
            .history
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OverlappingHolds { name: 0, .. })),
        "replay checker missed the overlapping holds: {:?}",
        verdict.history.violations
    );
}

/// Mutation 2: a guard that skips release — modeled by detaching the
/// name and returning it straight to the backend, behind the oracle's
/// back. The backend says everything drained; the history still shows
/// a live hold. The verdict must notice the disagreement.
#[test]
fn release_bypassing_the_oracle_is_detected() {
    let service = NameService::builder(Algorithm::Rebatching, 4)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0x0DD1))
        .build()
        .expect("build");
    let name = service.acquire().expect("acquire").into_name();
    // The seeded bug: release lands on the backend without the oracle
    // hook ever firing.
    service.backend().release(name).expect("release");
    assert_eq!(service.held(), 0, "backend believes it drained");

    let verdict = service.oracle_verdict().expect("oracle enabled");
    assert_eq!(verdict.history.live_at_exit, 1, "the history still holds the win");
    assert!(
        !verdict.held_matches_history(),
        "history/backend agreement check missed the skipped release"
    );
    assert!(!verdict.is_clean());
    assert!(!verdict.drained());
}

/// Mutation 3: a conservation-law off-by-one. Start from a genuinely
/// clean verdict, then perturb each worker counter by one — every
/// perturbation must flip `workers_conserved` (and with it
/// `is_clean`).
#[test]
fn worker_conservation_off_by_one_is_detected() {
    let service = NameService::builder(Algorithm::Rebatching, 4)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0x0FF))
        .build()
        .expect("build");
    drop(service.acquire().expect("acquire"));

    let clean = service.oracle_verdict().expect("oracle enabled");
    assert!(clean.is_clean() && clean.workers_conserved());

    for (dc, dp) in [(1i64, 0i64), (0, 1), (0, -1)] {
        let mut tampered = clean.clone();
        tampered.workers.created = tampered.workers.created.wrapping_add_signed(dc);
        tampered.workers.pooled = tampered.workers.pooled.wrapping_add_signed(dp);
        assert!(
            !tampered.workers_conserved(),
            "off-by-one (created{dc:+}, pooled{dp:+}) slipped past the conservation law"
        );
        assert!(!tampered.is_clean());
    }
}

/// Out-of-bounds names and capacity excess, driven straight into the
/// recorder: the checker must flag both even though no real backend in
/// this tree can produce them.
#[test]
fn bounds_and_capacity_violations_are_detected() {
    let oracle = Oracle::new(4, 2);
    oracle.acquire_start();
    oracle.acquire_win(7); // namespace is 0..4
    for name in 0..3 {
        oracle.acquire_start();
        oracle.acquire_win(name); // third live hold exceeds capacity 2
    }
    let report = oracle.verdict();
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NameOutOfBounds { name: 7, .. })));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::CapacityExceeded { .. })));
}

/// Positive snapshot coverage at the service level: cuts taken while
/// names are held must be consistent and report the held count; a cut
/// after draining reports zero.
#[test]
fn snapshots_report_live_occupancy_at_the_cut() {
    let service = NameService::builder(Algorithm::Rebatching, 8)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0x57A9))
        .build()
        .expect("build");
    let oracle = service.oracle().expect("enabled").clone();

    let guards: Vec<NameGuard<'_>> = (0..3).map(|_| service.acquire().expect("acquire")).collect();
    let first = oracle.snapshot();
    drop(guards);
    // A recording event after the bump moves this participant into the
    // new epoch; the drops above are already post-cut for `first`.
    drop(service.acquire().expect("acquire"));
    let second = oracle.snapshot();
    drop(service.acquire().expect("acquire"));

    let verdict = service.oracle_verdict().expect("oracle enabled");
    assert!(verdict.is_clean(), "violations: {:?}", verdict.history.violations);
    assert!(verdict.drained());
    let snaps = &verdict.history.snapshots;
    assert_eq!(snaps.len(), 2);
    assert!(snaps.iter().all(|s| s.consistent));
    assert_eq!(snaps[(first - 1) as usize].live_at_cut, 3, "three names held at the first cut");
    assert_eq!(snaps[(second - 1) as usize].live_at_cut, 0, "drained at the second cut");
}

/// The zero-cost-when-off contract: a service built without the oracle
/// reports no verdict and records nothing.
#[test]
fn oracle_off_means_no_verdict() {
    let service = NameService::builder(Algorithm::Rebatching, 4)
        .seed_policy(SeedPolicy::Fixed(2))
        .build()
        .expect("build");
    drop(service.acquire().expect("acquire"));
    assert!(service.oracle().is_none());
    assert!(service.oracle_verdict().is_none());
}
