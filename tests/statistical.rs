//! Statistical checks of the paper's w.h.p. bounds, with generous slack so
//! the suite is deterministic in practice (fixed seeds, failure budgets
//! orders of magnitude above the theoretical rates).

use std::sync::Arc;

use loose_renaming::analysis::{axis, LinearFit, Summary};
use loose_renaming::baselines::UniformMachine;
use loose_renaming::core::{
    AdaptiveLayout, AdaptiveMachine, BatchLayout, Epsilon, FastAdaptiveMachine, ProbeSchedule,
    RebatchingMachine,
};
use loose_renaming::lowerbound::uniform_extinction_layers;
use loose_renaming::sim::adversary::{RoundRobin, UniformRandom};
use loose_renaming::sim::{Execution, Renamer};

fn schedule() -> ProbeSchedule {
    ProbeSchedule::paper(Epsilon::one(), 3).expect("valid")
}

#[test]
fn theorem_4_1_step_bound_across_sizes() {
    // Max steps <= t0 + (kappa - 1) + beta in every run (no backup).
    for n in [64usize, 256, 1024, 4096] {
        let layout = BatchLayout::shared(n, schedule()).expect("layout");
        let budget = layout.max_probes() as u64;
        for seed in 0..5u64 {
            let machines: Vec<Box<dyn Renamer>> = (0..n)
                .map(|_| {
                    Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>
                })
                .collect();
            let report = Execution::new(layout.namespace_size())
                .adversary(Box::new(RoundRobin::new()))
                .seed(seed)
                .run(machines)
                .expect("run");
            assert_eq!(report.backup_entries(), 0, "n={n} seed={seed}");
            assert!(
                report.max_steps() <= budget,
                "n={n} seed={seed}: {} > {budget}",
                report.max_steps()
            );
        }
    }
}

#[test]
fn theorem_4_1_total_steps_linear() {
    // total/n stays bounded by a constant across a 64x size range.
    let mut ratios = Vec::new();
    for n in [256usize, 1024, 4096, 16384] {
        let layout = BatchLayout::shared(n, schedule()).expect("layout");
        let machines: Vec<Box<dyn Renamer>> = (0..n)
            .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(layout.namespace_size())
            .seed(1)
            .run(machines)
            .expect("run");
        ratios.push(report.total_steps as f64 / n as f64);
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 2.0,
        "total/n should be n-independent: {ratios:?}"
    );
}

#[test]
fn uniform_probing_grows_rebatching_does_not() {
    // The E10 shape at test scale: uniform max steps grow with n while
    // ReBatching's stay within the (constant) budget.
    let mut uniform_max = Vec::new();
    let mut log_axis = Vec::new();
    for n in [256usize, 1024, 4096, 16384] {
        let layout = BatchLayout::shared(n, schedule()).expect("layout");
        let m = layout.namespace_size();
        let mut worst = 0u64;
        for seed in 0..3u64 {
            let machines: Vec<Box<dyn Renamer>> = (0..n)
                .map(|_| Box::new(UniformMachine::new(m)) as Box<dyn Renamer>)
                .collect();
            let report = Execution::new(m).seed(seed).run(machines).expect("run");
            worst = worst.max(report.max_steps());
        }
        uniform_max.push(worst as f64);
        log_axis.push(axis::log2(n));
    }
    let fit = LinearFit::fit(&log_axis, &uniform_max);
    assert!(
        fit.slope() > 0.3,
        "uniform max steps should grow with log n: {fit}"
    );
    assert!(
        uniform_max.last().unwrap() > uniform_max.first().unwrap(),
        "uniform max steps should increase: {uniform_max:?}"
    );
}

#[test]
fn theorem_5_1_names_linear_in_contention() {
    let layout = Arc::new(AdaptiveLayout::for_capacity(1 << 12, schedule()).expect("layout"));
    for k in [2usize, 8, 32, 128] {
        let mut worst = 0usize;
        for seed in 0..5u64 {
            let machines: Vec<Box<dyn Renamer>> = (0..k)
                .map(|_| Box::new(AdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>)
                .collect();
            let report = Execution::new(layout.total_size())
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines)
                .expect("run");
            worst = worst.max(report.max_name().expect("named").value());
        }
        assert!(
            worst <= 8 * k + 64,
            "k={k}: max name {worst} exceeds the O(k) bound"
        );
    }
}

#[test]
fn theorem_5_2_total_work_stays_normalized() {
    let layout = Arc::new(AdaptiveLayout::for_capacity(1 << 12, schedule()).expect("layout"));
    let mut ratios = Vec::new();
    for k in [16usize, 64, 256, 1024] {
        let mut totals = Vec::new();
        for seed in 0..3u64 {
            let machines: Vec<Box<dyn Renamer>> = (0..k)
                .map(|_| {
                    Box::new(FastAdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>
                })
                .collect();
            let report = Execution::new(layout.total_size())
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines)
                .expect("run");
            totals.push(report.total_steps);
        }
        let mean = Summary::from_counts(totals).mean();
        ratios.push(mean / axis::n_log2_log2(k));
    }
    // Bounded by an absolute constant: 6·t0 covers race + search descent.
    assert!(
        ratios.iter().all(|r| *r < 6.0 * 53.0),
        "total/(k log log k) out of envelope: {ratios:?}"
    );
}

#[test]
fn lower_bound_layers_track_double_log() {
    // Doubling log n repeatedly adds roughly one layer each time.
    let layers: Vec<usize> = [10u32, 20, 40]
        .iter()
        .map(|&e| {
            let n = 1u64 << e;
            uniform_extinction_layers(n as f64 / 2.0, 2 * n as usize, 4.0, 99)
        })
        .collect();
    assert!(layers[0] < layers[1] && layers[1] < layers[2], "{layers:?}");
    assert!(
        layers[2] - layers[0] <= 3,
        "growth must be ~1 per doubling of lg n: {layers:?}"
    );
}

#[test]
fn adaptive_solo_run_is_constant_work() {
    // k = 1 is the extreme adaptivity test: a lone process must finish in
    // a handful of probes regardless of the provisioned capacity.
    for capacity_exp in [6u32, 10, 14] {
        let layout = Arc::new(
            AdaptiveLayout::for_capacity(1 << capacity_exp, schedule()).expect("layout"),
        );
        let machines: Vec<Box<dyn Renamer>> =
            vec![Box::new(AdaptiveMachine::new(Arc::clone(&layout)))];
        let report = Execution::new(layout.total_size())
            .seed(3)
            .run(machines)
            .expect("run");
        assert!(
            report.max_steps() <= 4,
            "capacity 2^{capacity_exp}: solo run took {} steps",
            report.max_steps()
        );
    }
}
