//! End-to-end renaming over the read/write-register TAS substrate:
//! ReBatching running with every slot backed by a register-based
//! tournament instead of a hardware atomic — the §2 "read-write model"
//! configuration, executable.

use std::collections::HashSet;
use std::sync::Arc;

use loose_renaming::core::{driver, BatchLayout, Epsilon, ProbeSchedule, RebatchingMachine};
use loose_renaming::tas::rwtas::TournamentTas;
use loose_renaming::tas::{TasArray, TicketTas};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn register_slot_array(slots: usize, contenders: usize) -> TasArray<TicketTas<TournamentTas>> {
    let slots: Vec<TicketTas<TournamentTas>> = (0..slots)
        .map(|_| TicketTas::new(TournamentTas::new(contenders)))
        .collect();
    TasArray::from_slots(slots)
}

#[test]
fn rebatching_over_register_tas_sequential() {
    let n = 16;
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let slots = register_slot_array(layout.namespace_size(), n);
    let mut names = HashSet::new();
    for i in 0..n {
        let mut machine = RebatchingMachine::new(Arc::clone(&layout), 0);
        let mut rng = StdRng::seed_from_u64(900 + i as u64);
        let name = driver::drive(&mut machine, &slots, &mut rng).expect("name");
        assert!(
            names.insert(name.value()),
            "duplicate name {name} over the register substrate"
        );
    }
    assert_eq!(names.len(), n);
}

#[test]
fn rebatching_over_register_tas_threaded() {
    let n = 12;
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let slots = Arc::new(register_slot_array(layout.namespace_size(), n));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let slots = Arc::clone(&slots);
            let layout = Arc::clone(&layout);
            std::thread::spawn(move || {
                let mut machine = RebatchingMachine::new(layout, 0);
                let mut rng = StdRng::seed_from_u64(7_000 + i as u64);
                driver::drive(&mut machine, &slots, &mut rng)
                    .expect("name")
                    .value()
            })
        })
        .collect();
    let names: HashSet<usize> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    assert_eq!(
        names.len(),
        n,
        "uniqueness must survive the register substrate under real concurrency"
    );
}
