//! End-to-end renaming over the read/write-register TAS substrate:
//! ReBatching running with every slot backed by a register-based
//! tournament instead of a hardware atomic — the §2 "read-write model"
//! configuration, executable.

use std::collections::HashSet;
use std::sync::Arc;

use loose_renaming::core::{driver, BatchLayout, Epsilon, ProbeSchedule, RebatchingMachine};
use loose_renaming::tas::rwtas::TournamentTas;
use loose_renaming::tas::{TasArray, TicketTas};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn register_slot_array(slots: usize, contenders: usize) -> TasArray<TicketTas<TournamentTas>> {
    let slots: Vec<TicketTas<TournamentTas>> = (0..slots)
        .map(|_| TicketTas::new(TournamentTas::new(contenders)))
        .collect();
    TasArray::from_slots(slots)
}

#[test]
fn rebatching_over_register_tas_sequential() {
    let n = 16;
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let slots = register_slot_array(layout.namespace_size(), n);
    let mut names = HashSet::new();
    for i in 0..n {
        let mut machine = RebatchingMachine::new(Arc::clone(&layout), 0);
        let mut rng = StdRng::seed_from_u64(900 + i as u64);
        let name = driver::drive(&mut machine, &slots, &mut rng).expect("name");
        assert!(
            names.insert(name.value()),
            "duplicate name {name} over the register substrate"
        );
    }
    assert_eq!(names.len(), n);
}

#[test]
fn rebatching_over_register_tas_threaded() {
    let n = 12;
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let slots = Arc::new(register_slot_array(layout.namespace_size(), n));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let slots = Arc::clone(&slots);
            let layout = Arc::clone(&layout);
            std::thread::spawn(move || {
                let mut machine = RebatchingMachine::new(layout, 0);
                let mut rng = StdRng::seed_from_u64(7_000 + i as u64);
                driver::drive(&mut machine, &slots, &mut rng)
                    .expect("name")
                    .value()
            })
        })
        .collect();
    let names: HashSet<usize> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    assert_eq!(
        names.len(),
        n,
        "uniqueness must survive the register substrate under real concurrency"
    );
}

mod epoch_reset_properties {
    //! Property: an epoch-reset slot is indistinguishable from a freshly
    //! built one. Whatever history a `TicketTas<TournamentTas>` slot
    //! accumulates — wins, loss storms past the ticket window, repeated
    //! resets — one `reset()` must leave it answering exactly like a
    //! brand-new slot of the same capacity, because the reset is a lazy
    //! epoch bump, not a rebuild: stale registers are *reinterpreted*,
    //! and any leak of old state through the stamps would show up here.

    use loose_renaming::tas::rwtas::TournamentTas;
    use loose_renaming::tas::{ResettableTas, Tas, TicketTas};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn epoch_reset_slots_are_indistinguishable_from_fresh(
            capacity in 1usize..12,
            burns in 0usize..24,
            rounds in 1usize..4,
        ) {
            let used = TicketTas::new(TournamentTas::new(capacity));
            for round in 0..rounds {
                // Dirty the slot: a win plus `burns` losing calls (which
                // may drain the epoch's ticket window entirely).
                let _ = used.test_and_set();
                for _ in 0..burns {
                    prop_assert!(used.test_and_set().lost());
                }
                used.reset();

                // From here the used slot and a pristine twin must agree
                // call-for-call, across the full ticket window and past
                // its end.
                let fresh = TicketTas::new(TournamentTas::new(capacity));
                prop_assert_eq!(Tas::is_set(&used), Tas::is_set(&fresh));
                prop_assert_eq!(used.tickets_issued(), fresh.tickets_issued());
                for call in 0..capacity + 2 {
                    prop_assert_eq!(
                        used.test_and_set(),
                        fresh.test_and_set(),
                        "call {} after reset {} diverged from a fresh slot",
                        call,
                        round
                    );
                    prop_assert_eq!(Tas::is_set(&used), Tas::is_set(&fresh));
                }
                prop_assert_eq!(used.tickets_issued(), fresh.tickets_issued());
            }
        }
    }
}
