//! Cross-crate integration tests: the three paper algorithms, driven both
//! through the simulator (under every adversary) and on real threads via
//! the facade crate.

use std::collections::HashSet;
use std::sync::Arc;

use loose_renaming::core::{
    AdaptiveMachine, AdaptiveRebatching, BatchLayout, Epsilon, FastAdaptiveMachine,
    FastAdaptiveRebatching, ProbeSchedule, Rebatching, RebatchingMachine,
};
use loose_renaming::sim::adversary::all_strategies;
use loose_renaming::sim::{Execution, Renamer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_schedule() -> ProbeSchedule {
    ProbeSchedule::paper(Epsilon::one(), 3).expect("valid")
}

#[test]
fn every_algorithm_under_every_adversary() {
    let n = 96;
    let rebatching = BatchLayout::shared(n, paper_schedule()).expect("layout");
    let adaptive = Arc::new(
        loose_renaming::core::AdaptiveLayout::for_capacity(n, paper_schedule()).expect("layout"),
    );
    type Factory<'a> = Box<dyn Fn() -> Box<dyn Renamer> + 'a>;
    let algorithms: Vec<(&str, usize, Factory)> = vec![
        (
            "rebatching",
            rebatching.namespace_size(),
            Box::new(|| Box::new(RebatchingMachine::new(Arc::clone(&rebatching), 0)) as Box<dyn Renamer>),
        ),
        (
            "adaptive",
            adaptive.total_size(),
            Box::new(|| Box::new(AdaptiveMachine::new(Arc::clone(&adaptive))) as Box<dyn Renamer>),
        ),
        (
            "fast-adaptive",
            adaptive.total_size(),
            Box::new(|| Box::new(FastAdaptiveMachine::new(Arc::clone(&adaptive))) as Box<dyn Renamer>),
        ),
    ];
    for (label, memory, factory) in &algorithms {
        for adversary in all_strategies() {
            let adv_label = adversary.label();
            let machines: Vec<Box<dyn Renamer>> = (0..n).map(|_| factory()).collect();
            let report = Execution::new(*memory)
                .adversary(adversary)
                .seed(0xfeed)
                .run(machines)
                .unwrap_or_else(|e| panic!("{label} under {adv_label}: {e}"));
            assert_eq!(report.named_count(), n, "{label} under {adv_label}");
            assert!(
                report.names_within(*memory).is_ok(),
                "{label} under {adv_label}: name out of range"
            );
        }
    }
}

#[test]
fn threaded_rebatching_full_capacity() {
    let n = 128;
    let object = Rebatching::with_defaults(n, Epsilon::one()).expect("object");
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let obj = object.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(31_337 + i as u64);
                obj.get_name(&mut rng).expect("name").value()
            })
        })
        .collect();
    let names: HashSet<usize> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    assert_eq!(names.len(), n, "names must be unique");
    assert!(names.iter().all(|&v| v < object.namespace_size()));
}

#[test]
fn threaded_adaptive_mixed_contention_rounds() {
    // Several waves of threads against the same adaptive object: the
    // one-shot names must stay globally unique across waves.
    let object = AdaptiveRebatching::with_defaults(256, Epsilon::one()).expect("object");
    let mut all_names = HashSet::new();
    for wave in 0..3u64 {
        let k = 16 << wave; // 16, 32, 64
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let obj = object.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(wave * 1000 + i as u64);
                    obj.get_name(&mut rng).expect("name").value()
                })
            })
            .collect();
        for h in handles {
            let name = h.join().expect("join");
            assert!(all_names.insert(name), "duplicate name {name} across waves");
        }
    }
    assert_eq!(all_names.len(), 16 + 32 + 64);
}

#[test]
fn threaded_fast_adaptive_names_scale_with_contention() {
    let object = FastAdaptiveRebatching::with_defaults(1 << 12).expect("object");
    let k = 8;
    let handles: Vec<_> = (0..k)
        .map(|i| {
            let obj = object.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 + i as u64);
                obj.get_name(&mut rng).expect("name").value()
            })
        })
        .collect();
    let max_name = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .max()
        .expect("k > 0");
    // k = 8 against capacity 4096: adaptive names stay near the bottom.
    assert!(
        max_name < 8 * k + 64,
        "max name {max_name} not O(k) for k = {k}"
    );
}

#[test]
fn mixed_algorithm_population_stays_safe() {
    // Processes running *different* algorithms share nothing but memory
    // layout assumptions, so give each family its own region via bases.
    // Here: all three machine kinds over the adaptive layout's memory,
    // rebatching writing into the top object's region.
    let capacity = 64;
    let adaptive = Arc::new(
        loose_renaming::core::AdaptiveLayout::for_capacity(capacity, paper_schedule())
            .expect("layout"),
    );
    let top = adaptive.max_index();
    let top_layout = Arc::clone(adaptive.object(top));
    let top_base = adaptive.base(top);
    let mut machines: Vec<Box<dyn Renamer>> = Vec::new();
    for i in 0..48 {
        machines.push(match i % 3 {
            0 => Box::new(AdaptiveMachine::new(Arc::clone(&adaptive))),
            1 => Box::new(FastAdaptiveMachine::new(Arc::clone(&adaptive))),
            _ => Box::new(RebatchingMachine::new(Arc::clone(&top_layout), top_base)),
        });
    }
    let report = Execution::new(adaptive.total_size())
        .seed(9)
        .run(machines)
        .expect("mixed population run");
    assert_eq!(report.named_count(), 48);
}

#[test]
fn facade_reexports_are_usable() {
    // The facade's module names are the public API surface promised by the
    // README; exercise one item from each.
    let _ = loose_renaming::tas::AtomicTas::new();
    let _ = loose_renaming::sim::TasMemory::new(4);
    let _ = loose_renaming::core::Epsilon::one();
    let _ = loose_renaming::baselines::LinearScanMachine::new();
    let _ = loose_renaming::lowerbound::Poisson::new(1.0);
    let _ = loose_renaming::analysis::Table::new(["col"]);
}
