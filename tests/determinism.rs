//! Reproducibility and machine/driver equivalence tests.
//!
//! The whole measurement methodology rests on two facts: (1) a seed fully
//! determines a simulated execution, and (2) the concurrent objects drive
//! the *same* state machines as the simulator, so a solo threaded run and
//! a solo simulated run with the same coin stream make identical probes.

use std::sync::Arc;

use loose_renaming::core::driver;
use loose_renaming::core::{
    AdaptiveLayout, AdaptiveMachine, BatchLayout, Epsilon, FastAdaptiveMachine, ProbeSchedule,
    RebatchingMachine,
};
use loose_renaming::sim::adversary::UniformRandom;
use loose_renaming::sim::{Execution, Renamer};
use loose_renaming::tas::{AtomicTas, TasArray};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schedule() -> ProbeSchedule {
    ProbeSchedule::paper(Epsilon::one(), 3).expect("valid")
}

fn run_sim(n: usize, seed: u64) -> Vec<usize> {
    let layout = BatchLayout::shared(n, schedule()).expect("layout");
    let machines: Vec<Box<dyn Renamer>> = (0..n)
        .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
        .collect();
    let report = Execution::new(layout.namespace_size())
        .adversary(Box::new(UniformRandom::new()))
        .seed(seed)
        .run(machines)
        .expect("run");
    report
        .outcomes
        .iter()
        .map(|o| o.name().expect("all named").value())
        .collect()
}

#[test]
fn identical_seeds_identical_executions() {
    let a = run_sim(64, 12345);
    let b = run_sim(64, 12345);
    assert_eq!(a, b, "same seed must reproduce the same name assignment");
}

#[test]
fn different_seeds_differ() {
    let a = run_sim(64, 1);
    let b = run_sim(64, 2);
    assert_ne!(a, b, "distinct seeds should explore distinct executions");
}

#[test]
fn solo_machine_matches_threaded_driver() {
    // A solo process takes no contention losses, so the machine's probe
    // trace depends only on its RNG: driving it against real atomics and
    // simulating it must land on the same name.
    for seed in 0..20u64 {
        let layout = BatchLayout::shared(64, schedule()).expect("layout");

        // Simulated run.
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(RebatchingMachine::new(
            Arc::clone(&layout),
            0,
        ))];
        // The runner derives the per-process stream from (seed, pid); with
        // pid 0 the derivation is deterministic, so replicate it by running
        // the sim twice instead of predicting the stream.
        let report_a = Execution::new(layout.namespace_size())
            .seed(seed)
            .run(machines)
            .expect("run");
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(RebatchingMachine::new(
            Arc::clone(&layout),
            0,
        ))];
        let report_b = Execution::new(layout.namespace_size())
            .seed(seed)
            .run(machines)
            .expect("run");
        assert_eq!(report_a.assigned_names(), report_b.assigned_names());

        // Driver run with an explicit RNG: same machine type, real slots.
        let slots: TasArray<AtomicTas> = TasArray::new(layout.namespace_size());
        let mut machine = RebatchingMachine::new(Arc::clone(&layout), 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let name_driver = driver::drive(&mut machine, &slots, &mut rng).expect("name");
        let mut machine2 = RebatchingMachine::new(Arc::clone(&layout), 0);
        let slots2: TasArray<AtomicTas> = TasArray::new(layout.namespace_size());
        let mut rng2 = StdRng::seed_from_u64(seed);
        let name_driver2 = driver::drive(&mut machine2, &slots2, &mut rng2).expect("name");
        assert_eq!(
            name_driver, name_driver2,
            "driver runs with the same RNG stream must match"
        );
    }
}

#[test]
fn adaptive_machines_are_deterministic_given_streams() {
    let layout = Arc::new(AdaptiveLayout::for_capacity(128, schedule()).expect("layout"));
    for seed in 0..10u64 {
        let run = |seed: u64| {
            let machines: Vec<Box<dyn Renamer>> = (0..24)
                .map(|_| Box::new(AdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>)
                .collect();
            Execution::new(layout.total_size())
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines)
                .expect("run")
                .assigned_names()
        };
        assert_eq!(run(seed), run(seed));
    }
}

#[test]
fn fast_adaptive_machines_are_deterministic_given_streams() {
    let layout = Arc::new(AdaptiveLayout::for_capacity(128, schedule()).expect("layout"));
    for seed in 0..10u64 {
        let run = |seed: u64| {
            let machines: Vec<Box<dyn Renamer>> = (0..24)
                .map(|_| {
                    Box::new(FastAdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>
                })
                .collect();
            Execution::new(layout.total_size())
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines)
                .expect("run")
                .assigned_names()
        };
        assert_eq!(run(seed), run(seed));
    }
}

/// Runs a batch of experiments through the parallel sweep path and
/// returns (report texts, serialized JSON-lines records).
fn experiment_fingerprint(threads: usize) -> (Vec<String>, Vec<u8>) {
    use renaming_bench::{experiments, Harness};

    let mut harness = Harness::with_threads(true, 42, threads);
    // One execution-sweep experiment per shape: single-kind trials (e1),
    // the adaptive collection (e5), the sharded Monte-Carlo marking (e7),
    // the numeric parallel map (e8), the sharded rate recurrence (e9),
    // multi-kind trials (e10) and crash plans (e12).
    let reports: Vec<String> = ["e1", "e5", "e7", "e8", "e9", "e10", "e12"]
        .iter()
        .map(|id| experiments::run(id, &mut harness))
        .collect();
    let mut records = Vec::new();
    harness.write_records(&mut records).expect("serialize");
    (reports, records)
}

#[test]
fn parallel_sweeps_are_byte_identical_across_thread_counts() {
    // The tentpole guarantee of the parallel trial runner: a report is a
    // pure function of (experiment, seed), never of the thread count that
    // computed it.
    let (reports_1, records_1) = experiment_fingerprint(1);
    for threads in [2, 4] {
        let (reports_n, records_n) = experiment_fingerprint(threads);
        assert_eq!(
            reports_1, reports_n,
            "report text diverged at {threads} threads"
        );
        assert_eq!(
            records_1, records_n,
            "JSON records diverged at {threads} threads"
        );
    }
}

#[test]
fn step_counts_equal_probe_counts() {
    // The simulator's step accounting and the machines' own probe counters
    // are independent implementations of the same measure; they must agree
    // for every process in every execution.
    let layout = BatchLayout::shared(128, schedule()).expect("layout");
    let machines: Vec<Box<dyn Renamer>> = (0..128)
        .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
        .collect();
    let report = Execution::new(layout.namespace_size())
        .seed(77)
        .run(machines)
        .expect("run");
    for (outcome, stats) in report.outcomes.iter().zip(&report.stats) {
        assert_eq!(outcome.steps(), stats.probes);
    }
    let total: u64 = report.outcomes.iter().map(|o| o.steps()).sum();
    assert_eq!(total, report.total_steps);
}
