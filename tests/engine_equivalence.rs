//! Engine-tier equivalence: the monomorphic fast path must be
//! *byte-identical* to the boxed path.
//!
//! Both tiers are instantiations of one generic engine, and with the same
//! RNG type (`StdRng`) they must consume identical coin streams and make
//! identical scheduling decisions. This suite serializes full
//! `ExecutionReport`s — including complete probe-level traces — from both
//! tiers and compares the JSON byte-for-byte, across the three paper
//! machines and multiple adversaries. It is the license for using the
//! fast path in experiments: anything measured on it could have been
//! measured (slower) on the boxed path.

use std::sync::Arc;

use loose_renaming::core::{
    AdaptiveLayout, AdaptiveMachine, BatchLayout, Epsilon, FastAdaptiveMachine, ProbeSchedule,
    RebatchingMachine,
};
use loose_renaming::sim::adversary::{Adversary, CollisionSeeker, RoundRobin, UniformRandom};
use loose_renaming::sim::{EngineScratch, Execution, ExecutionReport, Renamer};
use rand::rngs::StdRng;
use renaming_bench::MachineKind;

fn schedule() -> ProbeSchedule {
    ProbeSchedule::paper(Epsilon::one(), 3).expect("valid")
}

type AdversaryFactory = fn() -> Box<dyn Adversary>;

fn adversaries() -> Vec<(&'static str, AdversaryFactory)> {
    vec![
        ("round-robin", || Box::new(RoundRobin::new())),
        ("uniform-random", || Box::new(UniformRandom::new())),
        ("collision-seeker", || Box::new(CollisionSeeker::new())),
    ]
}

fn report_bytes(report: &ExecutionReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// Runs the boxed tier and the typed tier (same `StdRng` streams) and
/// asserts the serialized reports are identical bytes.
fn assert_equivalent<M, F, G>(memory: usize, n: usize, seed: u64, boxed: F, typed: G, label: &str)
where
    M: Renamer,
    F: Fn() -> Box<dyn Renamer>,
    G: Fn() -> M,
{
    for (adv_label, adversary) in adversaries() {
        let boxed_machines: Vec<Box<dyn Renamer>> = (0..n).map(|_| boxed()).collect();
        let report_boxed = Execution::new(memory)
            .adversary(adversary())
            .seed(seed)
            .tracing(true)
            .run(boxed_machines)
            .unwrap_or_else(|e| panic!("{label}/{adv_label} boxed: {e}"));

        let typed_machines: Vec<M> = (0..n).map(|_| typed()).collect();
        let report_typed = Execution::new(memory)
            .seed(seed)
            .tracing(true)
            .run_typed::<_, _, StdRng>(typed_machines, adversary())
            .unwrap_or_else(|e| panic!("{label}/{adv_label} typed: {e}"));

        assert_eq!(
            report_bytes(&report_boxed),
            report_bytes(&report_typed),
            "{label} under {adv_label}: tiers diverged"
        );
        assert!(report_typed.named_count() > 0, "{label}: nobody named");
    }
}

#[test]
fn rebatching_typed_path_is_byte_identical() {
    let layout = BatchLayout::shared(96, schedule()).expect("layout");
    for seed in [0u64, 7, 42] {
        let l1 = Arc::clone(&layout);
        let l2 = Arc::clone(&layout);
        assert_equivalent(
            layout.namespace_size(),
            96,
            seed,
            move || Box::new(RebatchingMachine::new(Arc::clone(&l1), 0)),
            move || RebatchingMachine::new(Arc::clone(&l2), 0),
            "rebatching",
        );
    }
}

#[test]
fn adaptive_typed_path_is_byte_identical() {
    let layout = Arc::new(AdaptiveLayout::for_capacity(128, schedule()).expect("layout"));
    for seed in [1u64, 13] {
        let l1 = Arc::clone(&layout);
        let l2 = Arc::clone(&layout);
        assert_equivalent(
            layout.total_size(),
            48,
            seed,
            move || Box::new(AdaptiveMachine::new(Arc::clone(&l1))),
            move || AdaptiveMachine::new(Arc::clone(&l2)),
            "adaptive",
        );
    }
}

#[test]
fn fast_adaptive_typed_path_is_byte_identical() {
    let layout = Arc::new(AdaptiveLayout::for_capacity(128, schedule()).expect("layout"));
    for seed in [2u64, 29] {
        let l1 = Arc::clone(&layout);
        let l2 = Arc::clone(&layout);
        assert_equivalent(
            layout.total_size(),
            48,
            seed,
            move || Box::new(FastAdaptiveMachine::new(Arc::clone(&l1))),
            move || FastAdaptiveMachine::new(Arc::clone(&l2)),
            "fast-adaptive",
        );
    }
}

#[test]
fn machine_kind_enum_matches_boxed_tier() {
    // The bench crate's match-dispatched enum is a third representation of
    // the same machines; it must agree with the boxed tier too.
    let layout = BatchLayout::shared(64, schedule()).expect("layout");
    let kind = MachineKind::Rebatching {
        layout: Arc::clone(&layout),
        base: 0,
    };
    let k1 = kind.clone();
    let k2 = kind;
    assert_equivalent(
        layout.namespace_size(),
        64,
        11,
        move || k1.boxed(),
        move || k2.instantiate(),
        "machine-kind",
    );
}

#[test]
fn scratch_reuse_does_not_change_results() {
    // Reusing the engine scratch across runs must be invisible in the
    // reports, including across different sizes.
    let mut scratch = EngineScratch::new();
    let mut fresh_reports = Vec::new();
    let mut reused_reports = Vec::new();
    for &n in &[48usize, 96, 24] {
        let layout = BatchLayout::shared(n, schedule()).expect("layout");
        let machines = |layout: &Arc<BatchLayout>| {
            (0..n)
                .map(|_| RebatchingMachine::new(Arc::clone(layout), 0))
                .collect::<Vec<_>>()
        };
        let fresh = Execution::new(layout.namespace_size())
            .seed(5)
            .tracing(true)
            .run_typed::<_, _, StdRng>(machines(&layout), UniformRandom::new())
            .expect("fresh run");
        let reused = Execution::new(layout.namespace_size())
            .seed(5)
            .tracing(true)
            .run_typed_in::<_, _, StdRng, _>(&mut scratch, machines(&layout), UniformRandom::new())
            .expect("reused run");
        fresh_reports.push(report_bytes(&fresh));
        reused_reports.push(report_bytes(&reused));
    }
    assert_eq!(fresh_reports, reused_reports);
}
