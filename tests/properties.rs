//! Property-based tests (proptest) over the core invariants:
//! uniqueness, namespace bounds, termination, layout bijections and
//! lower-bound numerics — under randomized seeds, sizes, adversaries and
//! crash plans.

use std::sync::Arc;

use proptest::prelude::*;

use loose_renaming::core::{
    AdaptiveLayout, AdaptiveMachine, BatchLayout, Epsilon, FastAdaptiveMachine, ProbeSchedule,
    RebatchingMachine,
};
use loose_renaming::lowerbound::{coupled_rate, CoupledPoisson, Poisson};
use loose_renaming::sim::adversary::{
    Adversary, CollisionSeeker, LayeredPermutation, RoundRobin, Starver, UniformRandom,
};
use loose_renaming::sim::{CrashPlan, Execution, Renamer};

fn adversary_for(idx: u8) -> Box<dyn Adversary> {
    match idx % 5 {
        0 => Box::new(RoundRobin::new()),
        1 => Box::new(UniformRandom::new()),
        2 => Box::new(LayeredPermutation::new()),
        3 => Box::new(CollisionSeeker::new()),
        _ => Box::new(Starver::new(0)),
    }
}

fn schedule() -> ProbeSchedule {
    // The tuned profile keeps the property tests fast without changing any
    // safety-relevant structure.
    ProbeSchedule::tuned(Epsilon::one(), 2, 3).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rebatching_unique_names_any_schedule(
        n in 2usize..200,
        seed in any::<u64>(),
        adv in any::<u8>(),
    ) {
        let layout = BatchLayout::shared(n, schedule()).expect("layout");
        let machines: Vec<Box<dyn Renamer>> = (0..n)
            .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(layout.namespace_size())
            .adversary(adversary_for(adv))
            .seed(seed)
            .run(machines)
            .expect("no safety violation");
        prop_assert_eq!(report.named_count(), n);
        prop_assert!(report.names_within(layout.namespace_size()).is_ok());
    }

    #[test]
    fn rebatching_survives_crashes(
        n in 4usize..150,
        seed in any::<u64>(),
        fraction in 0.0f64..0.95,
    ) {
        let layout = BatchLayout::shared(n, schedule()).expect("layout");
        let machines: Vec<Box<dyn Renamer>> = (0..n)
            .map(|_| Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>)
            .collect();
        let plan = CrashPlan::random_fraction(n, fraction, (n as u64).max(4), seed);
        let report = Execution::new(layout.namespace_size())
            .adversary(Box::new(UniformRandom::new()))
            .crash_plan(plan)
            .seed(seed)
            .run(machines)
            .expect("no safety violation");
        prop_assert_eq!(report.named_count() + report.crashed_count(), n);
        prop_assert_eq!(report.stuck_count(), 0);
        prop_assert!(report.names_within(layout.namespace_size()).is_ok());
    }

    #[test]
    fn adaptive_unique_names_any_contention(
        capacity_exp in 3u32..9,
        k in 1usize..100,
        seed in any::<u64>(),
        adv in any::<u8>(),
    ) {
        let capacity = 1usize << capacity_exp;
        let layout = Arc::new(
            AdaptiveLayout::for_capacity(capacity, schedule()).expect("layout"),
        );
        let k = k.min(capacity);
        let machines: Vec<Box<dyn Renamer>> = (0..k)
            .map(|_| Box::new(AdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(layout.total_size())
            .adversary(adversary_for(adv))
            .seed(seed)
            .run(machines)
            .expect("no safety violation");
        prop_assert_eq!(report.named_count(), k);
    }

    #[test]
    fn fast_adaptive_unique_names_any_contention(
        capacity_exp in 3u32..9,
        k in 1usize..100,
        seed in any::<u64>(),
        adv in any::<u8>(),
    ) {
        let capacity = 1usize << capacity_exp;
        let layout = Arc::new(
            AdaptiveLayout::for_capacity(capacity, schedule()).expect("layout"),
        );
        let k = k.min(capacity);
        let machines: Vec<Box<dyn Renamer>> = (0..k)
            .map(|_| Box::new(FastAdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(layout.total_size())
            .adversary(adversary_for(adv))
            .seed(seed)
            .run(machines)
            .expect("no safety violation");
        prop_assert_eq!(report.named_count(), k);
    }

    #[test]
    fn layout_location_bijection(n in 2usize..5000, eps_mil in 50usize..4000) {
        let eps = Epsilon::new(eps_mil as f64 / 1000.0).expect("valid eps");
        let s = ProbeSchedule::paper(eps, 3).expect("schedule");
        let layout = BatchLayout::new(n, s).expect("layout");
        // Every batch location roundtrips; offsets partition the area.
        let mut covered = 0usize;
        for batch in 0..layout.batch_count() {
            covered += layout.batch_size(batch);
            let first = layout.location(batch, 0);
            let last = layout.location(batch, layout.batch_size(batch) - 1);
            prop_assert_eq!(layout.locate(first), Some((batch, 0)));
            prop_assert_eq!(
                layout.locate(last),
                Some((batch, layout.batch_size(batch) - 1))
            );
        }
        prop_assert_eq!(covered, layout.batch_area());
        prop_assert!(layout.namespace_size() >= layout.batch_area());
        prop_assert!(layout.namespace_size() >= ((1.0 + eps.value()) * n as f64) as usize);
    }

    #[test]
    fn adaptive_layout_name_ownership(capacity_exp in 1u32..12, probe in any::<u64>()) {
        let capacity = 1usize << capacity_exp;
        let layout = AdaptiveLayout::for_capacity(capacity.max(2), schedule()).expect("layout");
        let name = (probe as usize) % layout.total_size();
        let object = layout.object_of_name(name);
        let base = layout.base(object);
        let size = layout.object(object).namespace_size();
        prop_assert!(name >= base && name < base + size);
    }

    #[test]
    fn poisson_quantile_inverts_cdf(lambda_mil in 1u64..2_000_000, u in 0.0001f64..0.9999) {
        let lambda = lambda_mil as f64 / 1000.0;
        let p = Poisson::new(lambda);
        let k = p.quantile(u);
        prop_assert!(p.cdf(k) >= u - 1e-12);
        if k > 0 {
            prop_assert!(p.cdf(k - 1) < u + 1e-12);
        }
    }

    #[test]
    fn coupling_inequality_always_holds(lambda_mil in 1u64..500_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let lambda = lambda_mil as f64 / 1000.0;
        let coupling = CoupledPoisson::new(lambda);
        prop_assert!((coupling.gamma() - coupled_rate(lambda)).abs() < 1e-12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let (z, y) = coupling.sample(&mut rng);
            prop_assert!(y <= z.saturating_sub(1), "lambda={lambda} z={z} y={y}");
        }
    }

    #[test]
    fn lemma_6_5_on_random_rates(lambda_mil in 1u64..100_000, n in 0u64..200) {
        let lambda = lambda_mil as f64 / 1000.0;
        let c = CoupledPoisson::new(lambda);
        prop_assert!(c.lemma_6_5_margin(n) >= -1e-12);
    }
}
