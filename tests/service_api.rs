//! Real-thread stress tests for the `NameService` acquire/release API.
//!
//! Four guarantees under test:
//!
//! 1. **Cross-thread uniqueness** — all concurrently held [`NameGuard`]s
//!    carry distinct names, proved over the whole execution by the
//!    concurrency oracle: every churn run records vector-clocked
//!    acquire/release events and the post-run checker shows no two
//!    holds of one name overlap under happens-before (plus consistent
//!    mid-churn snapshot cuts — not just post-hoc end states).
//! 2. **Drop-based recycling** — names return to the namespace when
//!    guards drop, so sustained churn far beyond the namespace size never
//!    exhausts it, and the service drains to zero held names.
//! 3. **Reproducibility** — under a fixed seed policy, a single-threaded
//!    acquisition sequence is a pure function of the builder
//!    configuration, and byte-identical across session-pool
//!    implementations (pinned against the PR 3 mutex-pool sequences).
//! 4. **Pool integrity** — the sharded lock-free pool never hands one
//!    session to two threads at once and never leaks workers, even with
//!    far more threads than shards and churn far beyond capacity.
//! 5. **Substrate parity** — the register-based tournament backend gives
//!    the same long-lived guarantees as the atomic one: churn ≫ the
//!    namespace size recycles names through the epoch-stamped tree
//!    reset, and draining an epoch's per-slot ticket window surfaces a
//!    structured error (never a panic) and heals on release.

use loose_renaming::prelude::*;

/// Acquire/release churn on every releasable backend: `threads` real
/// threads, each cycling `iterations` times, with the concurrency
/// oracle proving cross-thread uniqueness over the recorded history.
fn stress(algorithm: Algorithm, threads: usize, iterations: usize) {
    stress_with_pool(algorithm, threads, iterations, PoolKind::Sharded, None);
}

fn stress_with_pool(
    algorithm: Algorithm,
    threads: usize,
    iterations: usize,
    pool: PoolKind,
    shards: Option<usize>,
) {
    let mut builder = NameService::builder(algorithm, threads)
        .pool_kind(pool)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0xA11CE));
    if let Some(shards) = shards {
        builder = builder.pool_shards(shards);
    }
    let service = builder.build().expect("build");
    churn(&service, threads, iterations);
}

/// Acquire/release churn on an already-built, oracle-enabled service.
/// The hand-rolled live occupancy table this helper used to carry is
/// replaced by the concurrency oracle: every hold is recorded with a
/// vector clock, mid-churn consistent snapshots bound live occupancy
/// while threads are still running, and the post-run checker proves
/// no overlapping holds, the namespace bound, release matching, and
/// the worker conservation law in one verdict.
fn churn(service: &NameService, threads: usize, iterations: usize) {
    assert!(service.supports_release());
    let oracle = service.oracle().expect("churn services enable the oracle");

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let service = &service;
            scope.spawn(move || {
                for _ in 0..iterations {
                    let guard = service.acquire().expect("within capacity");
                    assert!(guard.value() < service.namespace_size());
                    std::hint::spin_loop();
                    drop(guard);
                }
            });
        }
        // Chandy–Lamport cuts taken while the churn is in flight: the
        // checker will prove each cut consistent and its live
        // occupancy within capacity.
        for _ in 0..2 {
            std::thread::yield_now();
            oracle.snapshot();
        }
    });

    let verdict = service.oracle_verdict().expect("oracle enabled");
    assert!(
        verdict.is_clean(),
        "oracle violations under {:?} churn: {:?}",
        service.algorithm(),
        verdict.history.violations
    );
    assert!(verdict.drained(), "all names recycled after the churn");
    assert_eq!(
        verdict.history.wins,
        (threads * iterations) as u64,
        "every cycle must complete"
    );
    assert_eq!(verdict.history.released(), verdict.history.wins);
    assert_eq!(verdict.history.participants, threads);
    for snapshot in &verdict.history.snapshots {
        assert!(snapshot.consistent, "inconsistent cut: {snapshot:?}");
        assert!(
            snapshot.live_at_cut <= service.capacity(),
            "cut occupancy over capacity: {snapshot:?}"
        );
    }
    assert_eq!(service.held(), 0, "all names recycled after the churn");
    // The churn performed far more acquisitions than the namespace has
    // slots — only recycling makes that possible.
    assert!(threads * iterations > 2 * service.namespace_size());
    // Worker conservation (pooled + retired + resident == created) is
    // part of `is_clean` via the verdict's `workers_conserved`.
    assert!(verdict.workers_conserved());
}

#[test]
fn rebatching_churn_is_unique_and_recycles() {
    stress(Algorithm::Rebatching, 8, 200);
}

#[test]
fn adaptive_churn_is_unique_and_recycles() {
    // Also exercises the abandoned-win recycling of the search phase:
    // without it, superseded race/search wins would leak a slot per
    // contended acquire and exhaust the namespace mid-test.
    stress(Algorithm::Adaptive, 8, 200);
}

#[test]
fn fast_adaptive_churn_is_unique_and_recycles() {
    stress(Algorithm::FastAdaptive, 8, 200);
}

#[test]
fn baseline_backends_churn_too() {
    for algorithm in [Algorithm::Uniform, Algorithm::SingleBatch, Algorithm::Doubling] {
        stress(algorithm, 4, 100);
    }
    // Linear scan: optimal namespace => heavier contention; fewer spins.
    stress(Algorithm::LinearScan, 4, 50);
}

#[test]
fn guards_held_together_are_distinct_across_threads() {
    let threads = 16;
    let service = NameService::builder(Algorithm::Rebatching, threads)
        .seed_policy(SeedPolicy::Fixed(7))
        .build()
        .expect("build");
    // Every thread acquires and returns its guard; all are held at once.
    let guards: Vec<NameGuard<'_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = &service;
                scope.spawn(move || service.acquire().expect("name"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let mut values: Vec<usize> = guards.iter().map(NameGuard::value).collect();
    values.sort_unstable();
    let before = values.len();
    values.dedup();
    assert_eq!(values.len(), before, "duplicate concurrent names");
    assert!(values.iter().all(|&v| v < service.namespace_size()));
    assert_eq!(service.held(), threads);
    drop(guards);
    assert_eq!(service.held(), 0, "dropping every guard drains the service");
}

#[test]
fn dropped_names_are_reissued() {
    // The namespace has 4 slots; 50 sequential acquisitions can only
    // succeed if dropped names come back.
    let service = NameService::builder(Algorithm::Rebatching, 2)
        .seed_policy(SeedPolicy::Fixed(3))
        .build()
        .expect("build");
    let mut seen = std::collections::HashSet::new();
    for _ in 0..50 {
        let guard = service.acquire().expect("nothing else held");
        seen.insert(guard.value());
    }
    assert!(!seen.is_empty());
    assert!(seen.len() <= service.namespace_size());
    assert_eq!(service.held(), 0);
}

#[test]
fn fixed_seed_sequences_are_reproducible_per_backend() {
    for algorithm in [
        Algorithm::Rebatching,
        Algorithm::Adaptive,
        Algorithm::FastAdaptive,
        Algorithm::Uniform,
    ] {
        let run = || fixed_seed_sequence(algorithm, PoolKind::Sharded, 99, 40);
        assert_eq!(run(), run(), "{algorithm:?}: fixed seed must reproduce");
    }
}

/// The mixed hold/release single-thread workload used for the golden
/// sequences below (and by `fixed_seed_sequences_are_reproducible_per_backend`).
fn fixed_seed_sequence(algorithm: Algorithm, pool: PoolKind, seed: u64, n: usize) -> Vec<usize> {
    fixed_seed_sequence_mode(algorithm, pool, seed, n, AcquireMode::Direct)
}

fn fixed_seed_sequence_mode(
    algorithm: Algorithm,
    pool: PoolKind,
    seed: u64,
    n: usize,
    mode: AcquireMode,
) -> Vec<usize> {
    let service = NameService::builder(algorithm, 32)
        .pool_kind(pool)
        .acquire_mode(mode)
        .seed_policy(SeedPolicy::Fixed(seed))
        .build()
        .expect("build");
    let mut values = Vec::new();
    let mut held = Vec::new();
    for i in 0..n {
        let guard = service.acquire().expect("within capacity");
        values.push(guard.value());
        if i % 3 == 0 {
            held.push(guard);
        } else {
            drop(guard);
        }
        if held.len() > 8 {
            held.clear();
        }
    }
    values
}

/// Golden sequences captured from the PR 3 `Mutex<Vec<_>>`-pool service
/// (seed `0xD0C5`, capacity 32, the mixed workload above). The sharded
/// pool — and any future pool — must reproduce them byte-for-byte:
/// stream ids are assigned at session construction, so single-threaded
/// fixed-seed output is part of the service's compatibility contract.
#[test]
fn fixed_seed_sequences_match_pr3_golden_values() {
    let golden: [(Algorithm, &[usize]); 4] = [
        (
            Algorithm::Rebatching,
            &[9, 20, 21, 13, 29, 19, 0, 19, 29, 30, 18, 14, 17, 6, 21, 1, 4, 24, 24, 26, 3, 26, 29, 8],
        ),
        (
            Algorithm::Adaptive,
            &[0, 1, 1, 1, 2, 2, 2, 5, 7, 6, 5, 4, 4, 7, 7, 7, 5, 5, 5, 9, 8, 9, 8, 8],
        ),
        (
            Algorithm::FastAdaptive,
            &[0, 1, 1, 1, 2, 2, 2, 5, 7, 6, 5, 4, 4, 7, 7, 7, 5, 5, 5, 8, 8, 8, 9, 9],
        ),
        (
            Algorithm::Uniform,
            &[18, 40, 43, 27, 59, 38, 1, 38, 58, 60, 37, 29, 34, 12, 43, 3, 8, 49, 48, 53, 7, 52, 59, 16],
        ),
    ];
    for (algorithm, expected) in golden {
        for pool in [PoolKind::Sharded, PoolKind::Mutex] {
            assert_eq!(
                fixed_seed_sequence(algorithm, pool, 0xD0C5, expected.len()),
                expected,
                "{algorithm:?} over the {pool:?} pool diverged from the PR 3 sequence"
            );
            // The combining front-end sees the same golden values: a
            // single-threaded caller forms batches of one, which reset
            // and drive the very same pooled session — the flat-combining
            // layer must be invisible to uncontended fixed-seed runs.
            assert_eq!(
                fixed_seed_sequence_mode(
                    algorithm,
                    pool,
                    0xD0C5,
                    expected.len(),
                    AcquireMode::Combining
                ),
                expected,
                "{algorithm:?} combining mode diverged from the direct golden sequence"
            );
        }
    }
}

/// Flat-combining torture: many threads funnel their acquires through
/// the combiner's request slots (threads far exceed the paper machines'
/// batch widths and, on small boxes, the combiner's slot array — the
/// overflow threads exercise the direct fallback too). The live
/// occupancy table inside `churn` proves no two overlapping holds ever
/// share a name, and the conservation law proves the batch sweeps leak
/// no pooled sessions.
#[test]
fn combining_churn_is_unique_and_recycles() {
    for algorithm in [
        Algorithm::Rebatching,
        Algorithm::Adaptive,
        Algorithm::FastAdaptive,
    ] {
        let threads = 16;
        let service = NameService::builder(algorithm, threads)
            .acquire_mode(AcquireMode::Combining)
            .oracle(true)
            .seed_policy(SeedPolicy::Fixed(0xC0B1))
            .build()
            .expect("build");
        assert_eq!(service.acquire_mode(), AcquireMode::Combining);
        churn(&service, threads, 200);
    }
}

/// Combining mode over the register-based tournament substrate: the
/// batch sweep drives epoch-stamped trees exactly like direct acquires.
#[test]
fn combining_tournament_churn_is_unique_and_recycles() {
    let threads = 4;
    let service = NameService::builder(Algorithm::Rebatching, threads)
        .tas_backend(TasBackend::Tournament)
        .acquire_mode(AcquireMode::Combining)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0xC0B2))
        .build()
        .expect("build");
    let iterations = (10 * service.namespace_size()).div_ceil(threads) + 5;
    churn(&service, threads, iterations);
}

/// Combiner handoff: the thread currently holding the combiner role
/// drops a guard mid-drain (its release routes straight to the backend,
/// never through the request queue), and when it retires, a waiting
/// thread must seize the combiner lock and serve the remaining requests
/// — otherwise the parked waiters here would deadlock the scope.
#[test]
fn combining_handoff_survives_guard_drops_mid_drain() {
    let threads = 8;
    // Each thread holds up to two guards at once, so capacity is double.
    let service = NameService::builder(Algorithm::FastAdaptive, 2 * threads)
        .acquire_mode(AcquireMode::Combining)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0x4A9D))
        .build()
        .expect("build");
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let service = &service;
            scope.spawn(move || {
                for _ in 0..100 {
                    // First acquire may install this thread as combiner
                    // for a whole batch of peers.
                    let first = service.acquire().expect("within capacity");
                    // Second acquire re-enters the combiner while the
                    // first guard is still live...
                    let second = service.acquire().expect("within capacity");
                    // ...and the first guard drops between the two
                    // publishes — a release interleaved with draining.
                    drop(first);
                    drop(second);
                }
            });
        }
    });
    // The oracle history carries every interleaved hold; the checker
    // proves no two of them ever shared a name concurrently.
    let verdict = service.oracle_verdict().expect("oracle enabled");
    assert!(
        verdict.is_clean(),
        "oracle violations: {:?}",
        verdict.history.violations
    );
    assert!(verdict.drained());
    assert_eq!(verdict.history.wins, (threads * 100 * 2) as u64);
    assert_eq!(verdict.history.guard_drops, verdict.history.wins);
    assert_eq!(service.held(), 0, "all names recycled after the handoffs");
}

/// `NameGuard` release must route correctly regardless of acquire mode:
/// a name acquired through the combiner is released directly on the
/// backend, and the service drains to zero.
#[test]
fn combining_guard_release_routes_to_backend() {
    let service = NameService::builder(Algorithm::Rebatching, 4)
        .acquire_mode(AcquireMode::Combining)
        .seed_policy(SeedPolicy::Fixed(0xF1EE))
        .build()
        .expect("build");
    let guard = service.acquire().expect("name");
    assert_eq!(service.held(), 1);
    drop(guard);
    assert_eq!(service.held(), 0);
    // Detach + manual release works the same way.
    let name = service.acquire().expect("name").into_name();
    service.release_name(name).expect("release");
    assert_eq!(service.held(), 0);
}

/// Torture the sharded pool itself: threads ≫ shards (16 threads on a
/// single shard) and churn ≫ capacity. The live occupancy table proves
/// no name — and therefore no session result — is duplicated, and the
/// conservation check inside `stress_with_pool` proves no session is
/// lost to the overflow path.
#[test]
fn sharded_pool_torture_threads_far_exceed_shards() {
    stress_with_pool(Algorithm::Rebatching, 16, 300, PoolKind::Sharded, Some(1));
    stress_with_pool(Algorithm::FastAdaptive, 12, 150, PoolKind::Sharded, Some(2));
}

/// The mutex pool remains selectable and correct — it is the measured
/// baseline in `service_throughput`.
#[test]
fn mutex_pool_still_serves_concurrent_churn() {
    stress_with_pool(Algorithm::Rebatching, 8, 150, PoolKind::Mutex, None);
}

#[test]
fn namespace_exhaustion_is_an_error_not_a_panic() {
    let service = NameService::builder(Algorithm::Rebatching, 2)
        .seed_policy(SeedPolicy::Fixed(5))
        .build()
        .expect("build");
    let mut guards = Vec::new();
    // Fill the whole (1+ε)n namespace, then one more must error.
    for _ in 0..service.namespace_size() {
        guards.push(service.acquire().expect("namespace not yet full"));
    }
    let err = service.acquire().unwrap_err();
    assert_eq!(
        err,
        RenamingError::NamespaceExhausted {
            namespace: service.namespace_size()
        }
    );
    drop(guards);
    // After draining, acquisition works again.
    assert!(service.acquire().is_ok());
}

/// Tournament-substrate churn: the mirror of `stress` on
/// `TasBackend::Tournament`. Sized from the built namespace so the churn
/// is always ≥ 10× its size — far beyond both the namespace and every
/// slot's per-epoch ticket window, so this passes only if releases
/// really reset the register trees (O(1) epoch bumps) and reissue
/// tickets.
fn stress_tournament(algorithm: Algorithm, threads: usize) {
    let service = NameService::builder(algorithm, threads)
        .tas_backend(TasBackend::Tournament)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(0x70AB))
        .build()
        .expect("build");
    assert!(service.supports_release());
    let iterations = (10 * service.namespace_size()).div_ceil(threads) + 5;
    churn(&service, threads, iterations);
    assert!(threads * iterations >= 10 * service.namespace_size());
}

#[test]
fn tournament_rebatching_churn_is_unique_and_recycles() {
    stress_tournament(Algorithm::Rebatching, 4);
}

#[test]
fn tournament_adaptive_churn_is_unique_and_recycles() {
    // Also exercises abandoned-win recycling over the register trees:
    // a superseded race/search win is released by resetting a slot the
    // machine (not the caller) won — same epoch-bump path.
    stress_tournament(Algorithm::Adaptive, 4);
}

#[test]
fn tournament_fast_adaptive_churn_is_unique_and_recycles() {
    stress_tournament(Algorithm::FastAdaptive, 4);
}

#[test]
fn tournament_ticket_exhaustion_is_an_error_and_heals_on_release() {
    // Capacity 2 ⇒ each slot's tournament holds max(2·2, 8) = 8
    // contender tickets per epoch. Holding the whole namespace while
    // spamming acquires burns far more than that per slot; every failed
    // acquire must surface the structured exhaustion error — never a
    // panic, never a duplicate name.
    let service = NameService::builder(Algorithm::Rebatching, 2)
        .tas_backend(TasBackend::Tournament)
        .seed_policy(SeedPolicy::Fixed(0xE4A))
        .build()
        .expect("build");
    let guards: Vec<_> = (0..service.namespace_size())
        .map(|_| service.acquire().expect("namespace not yet full"))
        .collect();
    for _ in 0..40 {
        match service.acquire() {
            Err(RenamingError::NamespaceExhausted { namespace }) => {
                assert_eq!(namespace, service.namespace_size());
            }
            Err(other) => panic!("expected NamespaceExhausted, got {other}"),
            Ok(guard) => panic!("duplicate name {} while namespace full", guard.value()),
        }
    }
    drop(guards);
    assert_eq!(service.held(), 0);
    // The releases bumped every slot's epoch, reissuing its tickets:
    // the pre-reset bug left the pid space drained for good here.
    for _ in 0..20 {
        let guard = service.acquire().expect("ticket windows reissued");
        drop(guard);
    }
    assert_eq!(service.held(), 0);
}
