//! Real-thread stress tests for the `NameService` acquire/release API.
//!
//! Three guarantees under test:
//!
//! 1. **Cross-thread uniqueness** — all concurrently held [`NameGuard`]s
//!    carry distinct names (checked live, per acquisition, via a per-slot
//!    occupancy table, not just post-hoc).
//! 2. **Drop-based recycling** — names return to the namespace when
//!    guards drop, so sustained churn far beyond the namespace size never
//!    exhausts it, and the service drains to zero held names.
//! 3. **Reproducibility** — under a fixed seed policy, a single-threaded
//!    acquisition sequence is a pure function of the builder
//!    configuration.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use loose_renaming::prelude::*;

/// Acquire/release churn on every releasable backend: `threads` real
/// threads, each cycling `iterations` times, with a live occupancy table
/// asserting cross-thread uniqueness at every hold.
fn stress(algorithm: Algorithm, threads: usize, iterations: usize) {
    let service = NameService::builder(algorithm, threads)
        .seed_policy(SeedPolicy::Fixed(0xA11CE))
        .build()
        .expect("build");
    assert!(service.supports_release());
    let occupied: Vec<AtomicBool> = (0..service.namespace_size())
        .map(|_| AtomicBool::new(false))
        .collect();
    let total_acquires = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (service, occupied, total) = (&service, &occupied, &total_acquires);
            scope.spawn(move || {
                for _ in 0..iterations {
                    let guard = service.acquire().expect("within capacity");
                    let slot = &occupied[guard.value()];
                    assert!(
                        !slot.swap(true, Ordering::SeqCst),
                        "name {} handed to two concurrent holders",
                        guard.value()
                    );
                    total.fetch_add(1, Ordering::Relaxed);
                    std::hint::spin_loop();
                    // Clear the occupancy bit *before* the release the
                    // guard drop performs, so a racing re-acquire of the
                    // same slot never observes a stale `true`.
                    slot.store(false, Ordering::SeqCst);
                    drop(guard);
                }
            });
        }
    });

    assert_eq!(
        total_acquires.load(Ordering::Relaxed),
        threads * iterations,
        "every cycle must complete"
    );
    assert_eq!(service.held(), 0, "all names recycled after the churn");
    // The churn performed far more acquisitions than the namespace has
    // slots — only recycling makes that possible.
    assert!(threads * iterations > 2 * service.namespace_size());
}

#[test]
fn rebatching_churn_is_unique_and_recycles() {
    stress(Algorithm::Rebatching, 8, 200);
}

#[test]
fn adaptive_churn_is_unique_and_recycles() {
    // Also exercises the abandoned-win recycling of the search phase:
    // without it, superseded race/search wins would leak a slot per
    // contended acquire and exhaust the namespace mid-test.
    stress(Algorithm::Adaptive, 8, 200);
}

#[test]
fn fast_adaptive_churn_is_unique_and_recycles() {
    stress(Algorithm::FastAdaptive, 8, 200);
}

#[test]
fn baseline_backends_churn_too() {
    for algorithm in [Algorithm::Uniform, Algorithm::SingleBatch, Algorithm::Doubling] {
        stress(algorithm, 4, 100);
    }
    // Linear scan: optimal namespace => heavier contention; fewer spins.
    stress(Algorithm::LinearScan, 4, 50);
}

#[test]
fn guards_held_together_are_distinct_across_threads() {
    let threads = 16;
    let service = NameService::builder(Algorithm::Rebatching, threads)
        .seed_policy(SeedPolicy::Fixed(7))
        .build()
        .expect("build");
    // Every thread acquires and returns its guard; all are held at once.
    let guards: Vec<NameGuard<'_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = &service;
                scope.spawn(move || service.acquire().expect("name"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let mut values: Vec<usize> = guards.iter().map(NameGuard::value).collect();
    values.sort_unstable();
    let before = values.len();
    values.dedup();
    assert_eq!(values.len(), before, "duplicate concurrent names");
    assert!(values.iter().all(|&v| v < service.namespace_size()));
    assert_eq!(service.held(), threads);
    drop(guards);
    assert_eq!(service.held(), 0, "dropping every guard drains the service");
}

#[test]
fn dropped_names_are_reissued() {
    // The namespace has 4 slots; 50 sequential acquisitions can only
    // succeed if dropped names come back.
    let service = NameService::builder(Algorithm::Rebatching, 2)
        .seed_policy(SeedPolicy::Fixed(3))
        .build()
        .expect("build");
    let mut seen = std::collections::HashSet::new();
    for _ in 0..50 {
        let guard = service.acquire().expect("nothing else held");
        seen.insert(guard.value());
    }
    assert!(!seen.is_empty());
    assert!(seen.len() <= service.namespace_size());
    assert_eq!(service.held(), 0);
}

#[test]
fn fixed_seed_sequences_are_reproducible_per_backend() {
    for algorithm in [
        Algorithm::Rebatching,
        Algorithm::Adaptive,
        Algorithm::FastAdaptive,
        Algorithm::Uniform,
    ] {
        let run = || -> Vec<usize> {
            let service = NameService::builder(algorithm, 32)
                .seed_policy(SeedPolicy::Fixed(99))
                .build()
                .expect("build");
            // Mixed workload: hold a few, release a few, single thread.
            let mut values = Vec::new();
            let mut held = Vec::new();
            for i in 0..40 {
                let guard = service.acquire().expect("within capacity");
                values.push(guard.value());
                if i % 3 == 0 {
                    held.push(guard); // hold on
                } else {
                    drop(guard); // recycle now
                }
                if held.len() > 8 {
                    held.clear(); // bulk release
                }
            }
            values
        };
        assert_eq!(run(), run(), "{algorithm:?}: fixed seed must reproduce");
    }
}

#[test]
fn namespace_exhaustion_is_an_error_not_a_panic() {
    let service = NameService::builder(Algorithm::Rebatching, 2)
        .seed_policy(SeedPolicy::Fixed(5))
        .build()
        .expect("build");
    let mut guards = Vec::new();
    // Fill the whole (1+ε)n namespace, then one more must error.
    for _ in 0..service.namespace_size() {
        guards.push(service.acquire().expect("namespace not yet full"));
    }
    let err = service.acquire().unwrap_err();
    assert_eq!(
        err,
        RenamingError::NamespaceExhausted {
            namespace: service.namespace_size()
        }
    );
    drop(guards);
    // After draining, acquisition works again.
    assert!(service.acquire().is_ok());
}
