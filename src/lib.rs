//! # loose-renaming
//!
//! Facade crate for the reproduction of *"Randomized loose renaming in
//! O(log log n) time"* (Alistarh, Aspnes, Giakkoupis, Woelfel — PODC 2013).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`service`] — the **recommended entry point**: a unified,
//!   thread-safe acquire/release API (`NameService`, RAII `NameGuard`,
//!   `Namespace` backends, and `AsyncNameService` for runtime-free
//!   `acquire().await`) over every algorithm below.
//! * [`net`] — the wire front-end: a length-prefixed binary protocol,
//!   the `renaming-server` TCP server (per-connection sessions, RAII
//!   release over the wire, a JSON `Stats` endpoint), a blocking
//!   client, and the `renaming-loadgen` load-generator library.
//! * [`tas`] — test-and-set substrate (hardware atomics and the
//!   read/write-register tournament).
//! * [`sim`] — asynchronous shared-memory execution model with adversarial
//!   schedulers and crash injection.
//! * [`core`] — the paper's algorithms: `ReBatching` (§4),
//!   `AdaptiveReBatching` (§5.1) and `FastAdaptiveReBatching` (§5.2).
//! * [`baselines`] — comparison algorithms (uniform probing, linear scan,
//!   ablations), as machines and as concurrent objects.
//! * [`lowerbound`] — the §6 lower-bound machinery as executable code.
//! * [`analysis`] — statistics and reporting helpers used by the
//!   experiments.
//!
//! See the repository `README.md` for a quickstart, `ARCHITECTURE.md`
//! for the layer-by-layer guide (TAS substrate → algorithms → two-tier
//! engine → sweep harness → service → network front-end), and
//! `EXPERIMENTS.md` for the
//! catalog of all reproduction experiments.
//!
//! # Example
//!
//! Acquire unique dense names from any thread, release by dropping:
//!
//! ```
//! use loose_renaming::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Namespace (1 + 1.0) * 64 = 128 names for up to 64 holders.
//! let service = NameService::builder(Algorithm::Rebatching, 64)
//!     .seed_policy(SeedPolicy::Fixed(42))
//!     .build()?;
//! let guard = service.acquire()?;
//! assert!(guard.value() < service.namespace_size());
//! drop(guard); // name recycled
//! assert_eq!(service.held(), 0);
//! # Ok(())
//! # }
//! ```
//!
//! The algorithm objects remain available directly for one-shot use and
//! simulation:
//!
//! ```
//! use loose_renaming::core::{Epsilon, Rebatching};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let renaming = Rebatching::with_defaults(64, Epsilon::new(1.0)?)?;
//! let mut rng = StdRng::seed_from_u64(42);
//! let name = renaming.get_name(&mut rng)?;
//! assert!(name.value() < renaming.namespace_size());
//! # Ok(())
//! # }
//! ```

pub use renaming_analysis as analysis;
pub use renaming_baselines as baselines;
pub use renaming_core as core;
pub use renaming_lowerbound as lowerbound;
pub use renaming_net as net;
pub use renaming_service as service;
pub use renaming_sim as sim;
pub use renaming_tas as tas;

/// The service-level vocabulary in one import: `use
/// loose_renaming::prelude::*;`.
pub mod prelude {
    pub use renaming_core::{Epsilon, Name, RenamingError};
    pub use renaming_service::{
        AcquireFuture, AcquireMode, Algorithm, AsyncNameGuard, AsyncNameService, HistoryReport,
        NameGuard, NameService, NameServiceBuilder, Namespace, Oracle, OracleVerdict, PoolKind,
        SeedPolicy, TasBackend, Violation, WorkerCounts,
    };
}
