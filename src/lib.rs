//! # loose-renaming
//!
//! Facade crate for the reproduction of *"Randomized loose renaming in
//! O(log log n) time"* (Alistarh, Aspnes, Giakkoupis, Woelfel — PODC 2013).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`tas`] — test-and-set substrate (hardware atomics and the
//!   read/write-register tournament).
//! * [`sim`] — asynchronous shared-memory execution model with adversarial
//!   schedulers and crash injection.
//! * [`core`] — the paper's algorithms: `ReBatching` (§4),
//!   `AdaptiveReBatching` (§5.1) and `FastAdaptiveReBatching` (§5.2).
//! * [`baselines`] — comparison algorithms (uniform probing, linear scan,
//!   ablations).
//! * [`lowerbound`] — the §6 lower-bound machinery as executable code.
//! * [`analysis`] — statistics and reporting helpers used by the
//!   experiments.
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md` for
//! the reproduced claims.
//!
//! # Example
//!
//! ```
//! use loose_renaming::core::{Epsilon, Rebatching};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A namespace of size (1 + 1.0) * 64 = 128 for up to 64 processes.
//! let renaming = Rebatching::with_defaults(64, Epsilon::new(1.0)?)?;
//! let mut rng = StdRng::seed_from_u64(42);
//! let name = renaming.get_name(&mut rng)?;
//! assert!(name.value() < renaming.namespace_size());
//! # Ok(())
//! # }
//! ```

pub use renaming_analysis as analysis;
pub use renaming_baselines as baselines;
pub use renaming_core as core;
pub use renaming_lowerbound as lowerbound;
pub use renaming_sim as sim;
pub use renaming_tas as tas;
